// Package srange is a sortedrange fixture: map iteration feeding
// order-sensitive sinks. The positive cases mirror the PR 2 bug — float
// accumulation of level weights in map order — and the emission and
// collect-without-sort variants of the same family.
package srange

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
)

// floatAccumulate is the PR 2 overall-score bug shape: float addition
// is not associative, so the sum depends on iteration order.
func floatAccumulate(weights map[string]float64) float64 {
	sum := 0.0
	for _, v := range weights {
		sum += v // want `floating-point accumulation in map iteration order`
	}
	return sum
}

// floatSpelledOut is the same bug without the compound operator.
func floatSpelledOut(weights map[string]float64) float64 {
	total := 0.0
	for _, v := range weights {
		total = total + v // want `floating-point accumulation in map iteration order`
	}
	return total
}

// emit writes rows in map order: two runs, two outputs.
func emit(w io.Writer, scores map[string]int) {
	for name, s := range scores {
		fmt.Fprintf(w, "%s=%d\n", name, s) // want `fmt\.Fprintf inside range over map`
	}
}

// emitStdout is the CLI variant of the same leak.
func emitStdout(scores map[string]int) {
	for name := range scores {
		fmt.Println(name) // want `fmt\.Println inside range over map`
		fmt.Fprint(os.Stdout, name) // want `fmt\.Fprint inside range over map`
	}
}

// accumulateBuffer feeds a buffer — an accumulator is a writer that
// remembers.
func accumulateBuffer(scores map[string]int) string {
	var buf bytes.Buffer
	for name := range scores {
		buf.WriteString(name) // want `buf\.WriteString inside range over map`
	}
	return buf.String()
}

// feedHash digests in map order: the fingerprint of identical content
// differs run to run.
func feedHash(cells map[string][]byte) uint64 {
	h := fnv.New64a()
	for _, b := range cells {
		h.Write(b) // want `h\.Write inside range over map`
	}
	return h.Sum64()
}

// collectUnsorted hands the map's randomized order to the caller.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys in map iteration order with no later sort`
	}
	return keys
}

// collectSorted is the sanctioned idiom: collect, sort, then use.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fieldSorted collects into a field and sorts it — rankings.go's shape.
type ranking struct{ Tools []string }

func fieldSorted(m map[string]float64) ranking {
	var r ranking
	for t := range m {
		r.Tools = append(r.Tools, t)
	}
	sort.Slice(r.Tools, func(i, j int) bool { return r.Tools[i] < r.Tools[j] })
	return r
}

// intAccumulate is exact arithmetic: order-free, legal.
func intAccumulate(counts map[string]int) int {
	n := 0
	for _, v := range counts {
		n += v
	}
	return n
}

// keyedWrites hit each key exactly once — no order dependence.
func keyedWrites(in map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range in {
		out[k] = v * 2
	}
	return out
}

// localScratch dies with the iteration; its order cannot escape.
func localScratch(m map[string][]int) int {
	worst := 0
	for _, row := range m {
		var local []int
		local = append(local, row...)
		if len(local) > worst {
			worst = len(local)
		}
	}
	return worst
}

// suppressed: emission in map order on purpose, reason on record.
func suppressed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //toolvet:ignore sortedrange debug dump; order is genuinely irrelevant here
	}
}
