// Package badignore exercises directive validation: a suppression that
// cannot say what it suppresses or why is itself a finding — otherwise
// a typo'd ignore would silently suppress nothing while looking load-
// bearing in review. (The want expectations ride in block comments so
// they can share the directive's line without becoming its reason.)
package badignore

import "errors"

var ErrGone = errors.New("gone")

// missingReason: the directive names an analyzer but gives no reason,
// so it reports itself and suppresses nothing.
func missingReason(err error) bool {
	/* want `malformed toolvet:ignore: a reason is required after the analyzer name` */ //toolvet:ignore errastype
	return err == ErrGone // want `comparing error with == ErrGone`
}

// unknownName: the directive names an analyzer that does not exist.
func unknownName(err error) bool {
	/* want `toolvet:ignore names unknown analyzer "errastypo"` */ //toolvet:ignore errastypo fat-fingered the analyzer name
	return err == ErrGone // want `comparing error with == ErrGone`
}

// bareDirective has neither name nor reason.
func bareDirective(err error) bool {
	/* want `malformed toolvet:ignore: missing analyzer name and reason` */ //toolvet:ignore
	return err == ErrGone // want `comparing error with == ErrGone`
}
