// Package linttest runs toolvet analyzers over testdata fixtures and
// checks their findings against expectations written in the fixtures
// themselves — the analysistest idiom, restated on the in-module
// framework:
//
//	sum += v // want `floating-point accumulation`
//
// Each `// want` comment holds one or more double-quoted regular
// expressions; every expression must match a distinct finding reported
// on that line, every finding must be claimed by an expectation, and
// suppressed findings must not surface at all.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tooleval/internal/lint"
)

// Run loads the fixture directory, applies the analyzer, and reports
// any divergence between findings and `// want` expectations as test
// errors.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.Check(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, pkg)

	type lineKey struct {
		file string
		line int
	}
	unclaimed := map[lineKey][]lint.Diagnostic{}
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		unclaimed[k] = append(unclaimed[k], d)
	}
	for _, w := range wants {
		k := lineKey{w.file, w.line}
		matched := false
		for i, d := range unclaimed[k] {
			if w.re.MatchString(d.Message) {
				unclaimed[k] = append(unclaimed[k][:i], unclaimed[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
	for _, ds := range unclaimed {
		for _, d := range ds {
			t.Errorf("%s:%d: unexpected finding: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantRE matches expectations in line comments and in block comments
// (block form lets an expectation share a line with an ignore
// directive without becoming part of the directive's reason).
var wantRE = regexp.MustCompile(`^/[/*]\s*want\s+(.*)`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"` + "|`[^`]*`")

func collectWants(t *testing.T, pkg *lint.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pat, err := unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	return strconv.Unquote(q)
}
