package lint_test

import (
	"testing"

	"tooleval/internal/lint"
	"tooleval/internal/lint/linttest"
)

// TestDetWallTime pins the wall-clock/randomness/identity contract:
// time.Now, time.Since, timer construction, global math/rand draws and
// os.Getpid flag inside a critical package; seeded sources, duration
// arithmetic, and suppressed sites do not.
func TestDetWallTime(t *testing.T) {
	a := lint.NewDetWallTime()
	set(t, a, "critical", "detcrit")
	linttest.Run(t, a, "testdata/detcrit")
}

// TestDetWallTimeAllowlist pins the daemon-uptime escape hatch: an
// allowlisted pkg:Recv.Func call site is exempt, the same call
// elsewhere is not.
func TestDetWallTimeAllowlist(t *testing.T) {
	a := lint.NewDetWallTime()
	set(t, a, "critical", "detallow")
	set(t, a, "allow", "detallow:Daemon.uptime")
	linttest.Run(t, a, "testdata/detallow")
}

// TestDetWallTimeNonCritical pins the scoping: outside the critical
// set, the same package is silent — the daemons keep their wall clocks.
func TestDetWallTimeNonCritical(t *testing.T) {
	a := lint.NewDetWallTime() // default critical set; "detcrit" is not in it
	pkg, err := lint.LoadDir("testdata/detcrit")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Check(a, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("non-critical package produced %d findings, want 0; first: %+v", len(diags), diags[0])
	}
}

// TestSortedRange pins the PR 2 bug family: float accumulation,
// writer/hash emission, and collect-without-sort flag; integer sums,
// keyed writes, sorted collects, and loop-local scratch do not.
func TestSortedRange(t *testing.T) {
	linttest.Run(t, lint.NewSortedRange(), "testdata/srange")
}

// TestErrAsType pins the PR 6 bug family: assertions, type switches and
// == on typed/sentinel errors flag; errors.As/Is, nil checks and
// concrete uses do not.
func TestErrAsType(t *testing.T) {
	linttest.Run(t, lint.NewErrAsType(), "testdata/errcase")
}

// TestBoundedGo pins the PR 6 fan-out family: per-item and per-index
// spawns flag (including acquire-inside-goroutine, which bounds work
// but not goroutines); worker pools, min-capped counted loops,
// constant bounds, and acquire-before-spawn do not.
func TestBoundedGo(t *testing.T) {
	linttest.Run(t, lint.NewBoundedGo(), "testdata/bgo")
}

// TestIgnoreDirectiveValidation pins that malformed or misspelled
// suppressions are findings themselves and suppress nothing.
func TestIgnoreDirectiveValidation(t *testing.T) {
	linttest.Run(t, lint.NewErrAsType(), "testdata/badignore")
}

func set(t *testing.T, a *lint.Analyzer, name, value string) {
	t.Helper()
	if err := a.Flags.Set(name, value); err != nil {
		t.Fatalf("setting -%s.%s=%s: %v", a.Name, name, value, err)
	}
}
