package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewDetWallTime builds the detwalltime analyzer: inside
// determinism-critical packages, the virtual clock is the only time
// source and seeded *rand.Rand the only randomness. Every sweep must be
// byte-identical across serial, -j, -shards and -workers modes, and the
// fastest way to lose that is one stray time.Now() in a cost model or
// one global rand.Intn in a workload generator.
//
// Forbidden in critical packages:
//   - time.Now, time.Since, time.Until, time.After, time.AfterFunc,
//     time.Tick, time.NewTicker, time.NewTimer — wall-clock observation
//     or wall-clock-driven scheduling.
//   - package-level math/rand and math/rand/v2 functions (rand.Intn,
//     rand.Float64, rand.Shuffle, rand.Seed, ...) — the process-global
//     generator is shared, lock-ordered, and unseeded. Constructors
//     (rand.New, rand.NewSource, rand.NewZipf, ...) stay legal: seeded
//     per-rank sources are the sanctioned idiom (mpt.Ctx.Rng).
//   - os.Getpid, os.Getppid — process identity leaking into results.
//
// Configuration:
//
//	-detwalltime.critical  comma-separated import paths under the contract
//	-detwalltime.allow     comma-separated <import path>:<func> call sites
//	                       exempted (e.g. a daemon's uptime counter);
//	                       <func> is "Name" or "Recv.Name"
func NewDetWallTime() *Analyzer {
	a := &Analyzer{
		Name: "detwalltime",
		Doc:  "forbid wall-clock, unseeded randomness, and process identity in determinism-critical packages",
	}
	critical := a.Flags.String("critical", strings.Join(defaultCritical, ","), "comma-separated determinism-critical import paths")
	allow := a.Flags.String("allow", "", "comma-separated pkgpath:func call sites exempt from the contract")
	a.Run = func(pass *Pass) error {
		if !commaSet(*critical)[pass.Pkg.Path()] {
			return nil
		}
		allowed := commaSet(*allow)
		inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			why := forbiddenWallTime(obj)
			if why == "" {
				return true
			}
			site := pass.Pkg.Path() + ":" + enclosingFuncName(stack)
			if allowed[site] {
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s in determinism-critical package %s: %s",
				obj.Pkg().Name(), obj.Name(), pass.Pkg.Path(), why)
			return true
		})
		return nil
	}
	return a
}

// defaultCritical is the set of packages whose outputs feed memoized,
// byte-compared sweep results. The daemons (server, remote, store) are
// deliberately absent: uptime, breaker backoff, and latency measurement
// are wall-clock by design there.
var defaultCritical = []string{
	"tooleval/internal/sim",
	"tooleval/internal/simnet",
	"tooleval/internal/mpt",
	"tooleval/internal/bench",
	"tooleval/internal/core",
}

var wallClockFuncs = map[string]string{
	"Now":       "wall-clock observation; use the engine's virtual clock",
	"Since":     "wall-clock observation; use the engine's virtual clock",
	"Until":     "wall-clock observation; use the engine's virtual clock",
	"After":     "wall-clock-driven scheduling; use virtual-time events",
	"AfterFunc": "wall-clock-driven scheduling; use virtual-time events",
	"Tick":      "wall-clock-driven scheduling; use virtual-time events",
	"NewTicker": "wall-clock-driven scheduling; use virtual-time events",
	"NewTimer":  "wall-clock-driven scheduling; use virtual-time events",
}

func forbiddenWallTime(obj types.Object) (why string) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return "" // methods (e.g. (*rand.Rand).Intn, (time.Time).Sub) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		return wallClockFuncs[fn.Name()]
	case "math/rand", "math/rand/v2":
		if strings.HasPrefix(fn.Name(), "New") {
			return "" // seeded constructors are the sanctioned idiom
		}
		return "package-global generator is unseeded and shared; use a seeded *rand.Rand (per-rank: mpt.Ctx.Rng)"
	case "os":
		switch fn.Name() {
		case "Getpid", "Getppid":
			return "process identity must not influence simulation results"
		}
	}
	return ""
}

func commaSet(s string) map[string]bool {
	set := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			set[part] = true
		}
	}
	return set
}
