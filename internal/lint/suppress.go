package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//toolvet:ignore <analyzer>[,<analyzer>] <reason>
//
// placed on the flagged line or the line directly above it. The reason
// is mandatory — a suppression that cannot say why it exists is a
// finding, not an exemption.
const ignorePrefix = "//toolvet:ignore"

// directive is one parsed //toolvet:ignore comment.
type directive struct {
	analyzers map[string]bool
	line      int
}

// directiveIndex maps file name → line → directives on that line.
type directiveIndex map[string]map[int][]directive

// indexDirectives scans every comment in every file for suppression
// directives. Malformed directives (no analyzer list or no reason) are
// returned as diagnostics in their own right so they cannot silently
// suppress nothing — or worse, look like they suppress something.
func indexDirectives(fset *token.FileSet, files []*ast.File, known map[string]bool) (directiveIndex, []Diagnostic) {
	idx := directiveIndex{}
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{Analyzer: "toolvet", Pos: fset.Position(pos), Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(c.Pos(), "malformed toolvet:ignore: missing analyzer name and reason")
					continue
				}
				if len(fields) < 2 {
					report(c.Pos(), "malformed toolvet:ignore: a reason is required after the analyzer name")
					continue
				}
				names := map[string]bool{}
				ok := true
				for _, name := range strings.Split(fields[0], ",") {
					if name == "" || (known != nil && !known[name]) {
						report(c.Pos(), fmt.Sprintf("toolvet:ignore names unknown analyzer %q", name))
						ok = false
						break
					}
					names[name] = true
				}
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = map[int][]directive{}
				}
				idx[pos.Filename][pos.Line] = append(idx[pos.Filename][pos.Line], directive{analyzers: names, line: pos.Line})
			}
		}
	}
	return idx, bad
}

// suppressed reports whether d is covered by a directive on its own
// line or the line directly above.
func (idx directiveIndex) suppressed(d Diagnostic) bool {
	lines := idx[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[ln] {
			if dir.analyzers[d.Analyzer] {
				return true
			}
		}
	}
	return false
}

// applySuppressions drops suppressed diagnostics and appends any
// malformed-directive findings.
func applySuppressions(pkg *Package, diags []Diagnostic, known map[string]bool) []Diagnostic {
	idx, bad := indexDirectives(pkg.Fset, pkg.Files, known)
	out := diags[:0]
	for _, d := range diags {
		if !idx.suppressed(d) {
			out = append(out, d)
		}
	}
	out = append(out, bad...)
	sortDiagnostics(out)
	return out
}
