package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewErrAsType builds the errastype analyzer: typed errors in this repo
// (*tooleval.QuotaError, *remote.RemoteVersionError, sentinels like
// store.ErrLocked) cross API layers wrapped — fmt.Errorf("%w"),
// errors.Join, context plumbing — so matching them structurally is the
// contract. A bare type assertion or == comparison silently stops
// matching the moment anyone adds a wrapping layer; that is exactly how
// PR 6's quota observer missed wrapped *QuotaError refusals.
//
// Flagged:
//
//   - err.(*SomeError) where err has static type error and *SomeError
//     implements error → use errors.As.
//   - switch err.(type) cases naming error implementations → errors.As.
//   - err == ErrSentinel / err != ErrSentinel against a package-level
//     error variable → use errors.Is. (Comparisons with nil stay legal:
//     nil-ness is the success contract, not an identity match.)
func NewErrAsType() *Analyzer {
	a := &Analyzer{
		Name: "errastype",
		Doc:  "require errors.As/errors.Is over type assertions, type switches, and == on error values",
	}
	a.Run = func(pass *Pass) error {
		errType := types.Universe.Lookup("error").Type()
		errIface := errType.Underlying().(*types.Interface)
		inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				if n.Type == nil {
					return true // type-switch guard; handled below
				}
				if !isErrorExpr(pass, errType, n.X) {
					return true
				}
				if t := pass.TypeOf(n.Type); t != nil && types.Implements(t, errIface) {
					pass.Reportf(n.Pos(), "type assertion on error value: a wrapped %s never matches; use errors.As", types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			case *ast.TypeSwitchStmt:
				checkErrorTypeSwitch(pass, errType, errIface, n)
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				checkSentinelCompare(pass, errType, errIface, n)
			}
			return true
		})
		return nil
	}
	return a
}

func checkErrorTypeSwitch(pass *Pass, errType types.Type, errIface *types.Interface, sw *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.ExprStmt:
		x = s.X.(*ast.TypeAssertExpr).X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	}
	if x == nil || !isErrorExpr(pass, errType, x) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, texpr := range cc.List {
			if id, ok := texpr.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if t := pass.TypeOf(texpr); t != nil && types.Implements(t, errIface) {
				pass.Reportf(texpr.Pos(), "type switch case %s on error value: a wrapped error never matches; use errors.As", types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
		}
	}
}

func checkSentinelCompare(pass *Pass, errType types.Type, errIface *types.Interface, bin *ast.BinaryExpr) {
	for _, pair := range [2][2]ast.Expr{{bin.X, bin.Y}, {bin.Y, bin.X}} {
		errSide, sentSide := pair[0], pair[1]
		if !isErrorExpr(pass, errType, errSide) {
			continue
		}
		obj := exprObject(pass, sentSide)
		v, ok := obj.(*types.Var)
		if !ok || v.Parent() == nil || v.Parent().Parent() != types.Universe {
			continue // not a package-level variable
		}
		if !types.Implements(v.Type(), errIface) {
			continue
		}
		pass.Reportf(bin.Pos(), "comparing error with %s %s: a wrapped sentinel never compares equal; use errors.Is", bin.Op, v.Name())
		return
	}
}

// isErrorExpr reports whether e's static type is exactly the
// predeclared error interface. Concrete-typed expressions (where the
// dynamic type is known) are excluded: asserting or comparing those is
// exact by construction.
func isErrorExpr(pass *Pass, errType types.Type, e ast.Expr) bool {
	t := pass.TypeOf(e)
	return t != nil && types.Identical(t, errType)
}

func exprObject(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.ObjectOf(e)
	case *ast.SelectorExpr:
		return pass.ObjectOf(e.Sel)
	}
	return nil
}
