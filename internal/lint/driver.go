package lint

import (
	"flag"
	"fmt"
	"io"
	"path/filepath"
)

// Main is the toolvet multichecker: load every package matching the
// argument patterns (default ./...), run the analyzer suite, apply
// //toolvet:ignore suppressions, and print surviving findings sorted by
// position. Exit status: 0 clean, 1 findings, 2 usage or load failure.
// cmd/toolvet is a two-line wrapper over this so the analysis logic is
// testable in-process.
func Main(args []string, stdout, stderr io.Writer, analyzers []*Analyzer) int {
	fs := flag.NewFlagSet("toolvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory to run in (module root)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: toolvet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nSuppress a finding with `//toolvet:ignore <analyzer> <reason>` on the flagged line or the line above.\n\nFlags:\n")
		fs.PrintDefaults()
	}
	known := map[string]bool{"toolvet": true}
	for _, a := range analyzers {
		known[a.Name] = true
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pkgs, err := Load(*dir, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			ds, err := runAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			diags = append(diags, ds...)
		}
		diags = applySuppressions(pkg, diags, known)
		for _, d := range diags {
			findings++
			fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", relPath(*dir, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "toolvet: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

func relPath(dir, path string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(abs, path)
	if err != nil || len(rel) > len(path) {
		return path
	}
	return rel
}
