package platform

import (
	"testing"
	"time"
)

func TestCatalogComplete(t *testing.T) {
	want := []string{"sun-ethernet", "sun-atm-lan", "sun-atm-wan", "alpha-fddi", "sp1-switch", "sp1-ethernet"}
	got := Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("cray-t3d"); err == nil {
		t.Fatal("Get of unknown platform should error")
	}
}

func TestExpressNotOnNYNET(t *testing.T) {
	p, err := Get("sun-atm-wan")
	if err != nil {
		t.Fatal(err)
	}
	if p.Supports("express") {
		t.Fatal("Express had no NYNET port in the paper (Figs 2-4, 7)")
	}
	if !p.Supports("p4") || !p.Supports("pvm") {
		t.Fatal("p4 and PVM must be supported on NYNET")
	}
	if p.MaxProcs != 4 {
		t.Fatalf("NYNET MaxProcs = %d, want 4 (Fig 7 sweeps 1-4)", p.MaxProcs)
	}
}

func TestHostSpeedOrdering(t *testing.T) {
	// The paper: Alpha cluster fastest, SP-1 nodes slower than Alpha,
	// SPARCstations slowest; IPX (40MHz) faster than ELC (33MHz).
	if !(AlphaWS.OpsPerSec > RS6000.OpsPerSec) {
		t.Fatal("Alpha must out-run RS/6000")
	}
	if !(RS6000.OpsPerSec > SunIPX.OpsPerSec) {
		t.Fatal("RS/6000 must out-run SPARCstation IPX")
	}
	if !(SunIPX.OpsPerSec > SunELC.OpsPerSec) {
		t.Fatal("IPX must out-run ELC")
	}
}

func TestCostOf(t *testing.T) {
	h := Host{OpsPerSec: 1e6}
	if got := h.CostOf(1e6); got != time.Second {
		t.Fatalf("CostOf(1e6 ops at 1e6 ops/s) = %v, want 1s", got)
	}
	if got := h.CostOf(0); got != 0 {
		t.Fatalf("CostOf(0) = %v, want 0", got)
	}
	if got := h.CostOf(-5); got != 0 {
		t.Fatalf("CostOf(-5) = %v, want 0", got)
	}
}

func TestNetworksConstructible(t *testing.T) {
	for _, p := range All() {
		n := p.NewNetwork(4)
		if n.Stations() != 4 {
			t.Fatalf("%s: Stations = %d, want 4", p.Key, n.Stations())
		}
		lb := p.NewLoopback(4)
		if lb.Stations() != 4 {
			t.Fatalf("%s: loopback Stations = %d, want 4", p.Key, lb.Stations())
		}
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Key = "mutated"
	if All()[0].Key == "mutated" {
		t.Fatal("All() must return a copy of the catalog")
	}
}
