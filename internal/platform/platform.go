// Package platform catalogs the multi-computer systems of the paper's
// experimentation environment (§3.1): host CPU models and the network
// fabric each configuration uses. Calibration constants (instruction
// rates, memory bandwidth) are chosen so that the simulated results land
// in the same regime as the paper's measurements; EXPERIMENTS.md records
// the paper-vs-measured comparison.
package platform

import (
	"fmt"
	"time"

	"tooleval/internal/simnet"
)

// Host models one node type: its clock rate as reported in the paper and
// the derived calibration constants used by the cost models.
type Host struct {
	Name     string
	ClockMHz float64
	// OpsPerSec is the sustained rate at which the host retires the
	// "operations" that tool software paths and application kernels are
	// costed in. It folds in 1995-era memory systems and compilers, so it
	// is well below ClockMHz * 1e6.
	OpsPerSec float64
	// MemCopyBps is sustainable single-copy memory bandwidth, which
	// bounds loopback (intra-host) message hops.
	MemCopyBps float64
	// SyscallTime is the fixed kernel-entry cost charged by transports
	// per chunk handed to or received from the network.
	SyscallTime time.Duration
}

// CostOf converts an operation count into CPU time on this host.
func (h Host) CostOf(ops float64) time.Duration {
	if ops <= 0 {
		return 0
	}
	return time.Duration(ops / h.OpsPerSec * float64(time.Second))
}

// Hosts from §3.1. Instruction rates are calibrated against the paper's
// single-processor application times (Figures 5-8): the Alpha cluster is
// the fastest platform, the SP-1 nodes roughly half its speed, and the
// SPARCstations trail well behind.
var (
	// SunELC: SPARCstation ELC, 33 MHz, the SUN/Ethernet stations.
	SunELC = Host{Name: "SUN SPARCstation ELC", ClockMHz: 33, OpsPerSec: 8e6, MemCopyBps: 18e6, SyscallTime: 120 * time.Microsecond}
	// SunIPX: SPARCstation IPX, 40 MHz, the ATM LAN/WAN stations.
	SunIPX = Host{Name: "SUN SPARCstation IPX", ClockMHz: 40, OpsPerSec: 12e6, MemCopyBps: 25e6, SyscallTime: 90 * time.Microsecond}
	// AlphaWS: DEC Alpha workstation, 150 MHz, the FDDI cluster.
	AlphaWS = Host{Name: "DEC Alpha 150MHz", ClockMHz: 150, OpsPerSec: 55e6, MemCopyBps: 80e6, SyscallTime: 30 * time.Microsecond}
	// RS6000: IBM RISC System/6000 370, 62.5 MHz, the SP-1 nodes.
	RS6000 = Host{Name: "IBM RS/6000 370", ClockMHz: 62.5, OpsPerSec: 25e6, MemCopyBps: 45e6, SyscallTime: 50 * time.Microsecond}
)

// Platform is one platform/network configuration from §3.1.
type Platform struct {
	// Key is the stable identifier used by the CLI and the benchmark
	// harness (e.g. "sun-ethernet").
	Key string
	// Name is the label the paper uses.
	Name        string
	Description string
	Host        Host
	// MaxProcs is the largest processor count the paper sweeps on this
	// platform (8 for the clusters, 4 for NYNET).
	MaxProcs int
	// Tools lists the message-passing tools with ports to this platform
	// in the paper (Express was not available on NYNET).
	Tools []string
	// NewNetwork builds a fresh fabric instance for one simulation.
	NewNetwork func(stations int) simnet.Network
}

// Supports reports whether the named tool has a port to this platform.
func (p Platform) Supports(tool string) bool {
	for _, t := range p.Tools {
		if t == tool {
			return true
		}
	}
	return false
}

// NewLoopback builds the per-station intra-host channels for this
// platform's host type.
func (p Platform) NewLoopback(stations int) simnet.Network {
	return simnet.NewLoopback(stations, p.Host.MemCopyBps, p.Host.SyscallTime)
}

var catalog = []Platform{
	{
		Key:         "sun-ethernet",
		Name:        "SUN/Ethernet",
		Description: "SPARCstation ELCs on a shared 10 Mbit/s Ethernet segment",
		Host:        SunELC,
		MaxProcs:    8,
		Tools:       []string{"p4", "pvm", "express"},
		NewNetwork:  func(n int) simnet.Network { return simnet.NewEthernet10(n) },
	},
	{
		Key:         "sun-atm-lan",
		Name:        "SUN/ATM LAN",
		Description: "SPARCstation IPXs on a FORE ATM switch, 140 Mbit/s TAXI interfaces",
		Host:        SunIPX,
		MaxProcs:    8,
		Tools:       []string{"p4", "pvm", "express"},
		NewNetwork:  func(n int) simnet.Network { return simnet.NewATMLAN(n) },
	},
	{
		Key:         "sun-atm-wan",
		Name:        "SUN/ATM WAN (NYNET)",
		Description: "SPARCstation IPXs across the NYNET OC-3 ATM WAN (Syracuse-Rome)",
		Host:        SunIPX,
		MaxProcs:    4,
		Tools:       []string{"p4", "pvm"}, // Express had no NYNET port (Figs 2-4, 7)
		NewNetwork:  func(n int) simnet.Network { return simnet.NewATMWAN(n) },
	},
	{
		Key:         "alpha-fddi",
		Name:        "ALPHA/FDDI",
		Description: "8 DEC Alpha workstations on dedicated switched FDDI segments",
		Host:        AlphaWS,
		MaxProcs:    8,
		Tools:       []string{"p4", "pvm", "express"},
		NewNetwork:  func(n int) simnet.Network { return simnet.NewFDDISwitched(n) },
	},
	{
		Key:         "sp1-switch",
		Name:        "IBM-SP1 (Switch)",
		Description: "16-node IBM SP-1, Allnode crossbar switch interconnect",
		Host:        RS6000,
		MaxProcs:    8,
		Tools:       []string{"p4", "pvm", "express"},
		NewNetwork:  func(n int) simnet.Network { return simnet.NewAllnode(n) },
	},
	{
		Key:         "sp1-ethernet",
		Name:        "IBM-SP1 (Ethernet)",
		Description: "IBM SP-1 nodes over the dedicated Ethernet",
		Host:        RS6000,
		MaxProcs:    8,
		Tools:       []string{"p4", "pvm", "express"},
		NewNetwork:  func(n int) simnet.Network { return simnet.NewDedicatedEthernet(n) },
	},
}

// All returns the full platform catalog in the paper's order.
func All() []Platform {
	out := make([]Platform, len(catalog))
	copy(out, catalog)
	return out
}

// Get returns the platform with the given key.
func Get(key string) (Platform, error) {
	for _, p := range catalog {
		if p.Key == key {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("platform: unknown key %q (known: %v)", key, Keys())
}

// Keys returns all platform keys in catalog order.
func Keys() []string {
	ks := make([]string, len(catalog))
	for i, p := range catalog {
		ks[i] = p.Key
	}
	return ks
}
