//go:build unix

package store

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive flock on the segment file.
// flock locks belong to the open file description, so a second Open —
// same process or another — conflicts either way, and closing the file
// (Store.Close, or the error paths in Open) releases the lock with no
// separate bookkeeping.
func lockFile(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == nil {
		return nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return ErrLocked
	}
	return fmt.Errorf("flock: %w", err)
}
