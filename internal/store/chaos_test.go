package store

import (
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"tooleval/internal/faults"
)

// The TestChaos* tests are the store half of the seeded chaos suite
// (make chaos / the CI chaos job): property tests over every torn-write
// prefix, every truncation length, and every single-byte corruption of
// a segment, all asserting the same invariant — the store recovers to
// exactly the longest intact record prefix and heals completely once
// the damaged cells refill. In -short mode the seed is pinned; the full
// run draws (and logs) a fresh one, reproducible via
// TOOLEVAL_CHAOS_SEED.

// chaosSeed resolves and logs the seed a chaos test runs under.
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	seed, pinned := faults.PickSeed("TOOLEVAL_CHAOS_SEED", testing.Short())
	if pinned {
		t.Logf("chaos seed %d (pinned)", seed)
	} else {
		t.Logf("chaos seed %d (rerun with TOOLEVAL_CHAOS_SEED=%d to reproduce)", seed, seed)
	}
	return seed
}

// recordOffsets fills n cells through a clean store in its own
// directory and returns offs where offs[i] is the segment size after i
// records (offs[0] = header only), plus the pristine segment bytes.
func recordOffsets(t *testing.T, n int) (offs []int64, pristine []byte) {
	t.Helper()
	dir := t.TempDir()
	s := openT(t, dir, testEngine)
	offs = append(offs, segSize(t, s))
	for i := 0; i < n; i++ {
		s.Fill(cellKey(i), cellRes(i))
		offs = append(offs, segSize(t, s))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	pristine, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatalf("reading pristine segment: %v", err)
	}
	return offs, pristine
}

// tearNthWrite is the Injector for the torn-prefix sweep: it turns
// exactly one write (1-based, counting every write through the file,
// header included) into a short write and passes everything else.
type tearNthWrite struct {
	mu     sync.Mutex
	writes int
	target int
}

func (i *tearNthWrite) Decide(op faults.Op, _ int) faults.Decision {
	if op != faults.OpWrite {
		return faults.Decision{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.writes++
	if i.writes == i.target {
		return faults.Decision{Fail: true, Short: true}
	}
	return faults.Decision{}
}

// TestChaosEveryTornPrefixRepairs drives a short write through the
// fault seam at every possible tear point of a record and proves the
// in-process repair path: the failed Fill leaves a torn half-frame on
// disk, the next Fill of the same cell truncates it back and appends
// cleanly, and the healed segment is byte-for-byte the size a fault-free
// run produces.
func TestChaosEveryTornPrefixRepairs(t *testing.T) {
	const n = 4
	offs, _ := recordOffsets(t, n)
	frameLen := int(offs[n] - offs[n-1]) // the record the sweep tears

	for k := 0; k < frameLen; k++ {
		dir := t.TempDir()
		// Write #1 is the fresh store's header; fill i is write 2+i, so
		// the last cell's append is write n+1.
		inj := &tearNthWrite{target: n + 1}
		s, err := Open(dir, testEngine, WithFile(func(f File) File {
			ff := faults.NewFile(f, inj)
			ff.SetTear(func(int) int { return k })
			return ff
		}))
		if err != nil {
			t.Fatalf("tear@%d: Open: %v", k, err)
		}
		for i := 0; i < n; i++ {
			s.Fill(cellKey(i), cellRes(i))
		}
		h := s.Health()
		if h.Failures != 1 || !errors.Is(h.Err, faults.ErrInjected) {
			t.Fatalf("tear@%d: after torn write: failures=%d err=%v", k, h.Failures, h.Err)
		}
		if got := segSize(t, s); got != offs[n-1]+int64(k) {
			t.Fatalf("tear@%d: torn segment is %d bytes, want %d", k, got, offs[n-1]+int64(k))
		}
		// The cell the torn write lost re-fills: repair truncates the
		// half-frame and the append lands cleanly.
		s.Fill(cellKey(n-1), cellRes(n-1))
		if err := s.Err(); err != nil {
			t.Fatalf("tear@%d: after repairing refill: %v", k, err)
		}
		if got := segSize(t, s); got != offs[n] {
			t.Fatalf("tear@%d: healed segment is %d bytes, want %d", k, got, offs[n])
		}
		if err := s.Close(); err != nil {
			t.Fatalf("tear@%d: Close: %v", k, err)
		}
		s2 := openT(t, dir, testEngine)
		wantCells(t, s2, seq(0, n), nil)
		s2.Close()
	}
}

// TestChaosEveryTruncationRecovers crashes the segment at every
// possible length — byte 0 through the full file — and asserts open
// recovers exactly the records fully contained in the surviving prefix,
// with the torn bytes gone from disk.
func TestChaosEveryTruncationRecovers(t *testing.T) {
	const n = 4
	offs, pristine := recordOffsets(t, n)
	dir := t.TempDir()
	s := openT(t, dir, testEngine)
	path := s.Path()
	s.Close()

	for cut := int64(0); cut <= offs[n]; cut++ {
		if err := os.WriteFile(path, pristine[:cut], 0o644); err != nil {
			t.Fatalf("cut@%d: %v", cut, err)
		}
		kept := 0
		for kept+1 <= n && offs[kept+1] <= cut {
			kept++
		}
		if cut < offs[0] {
			kept = 0 // partial header: the store resets wholesale
		}
		s := openT(t, dir, testEngine)
		if s.Len() != kept {
			t.Fatalf("cut@%d: Len = %d, want %d", cut, s.Len(), kept)
		}
		wantCells(t, s, seq(0, kept), seq(kept, n))
		if got := segSize(t, s); got != offs[kept] {
			t.Fatalf("cut@%d: recovered segment is %d bytes, want %d", cut, got, offs[kept])
		}
		if err := s.Close(); err != nil {
			t.Fatalf("cut@%d: Close: %v", cut, err)
		}
	}
}

// TestChaosEveryByteFlipRecovers corrupts every single byte of the
// segment in turn (a seeded xor mask per offset) and asserts recovery
// lands on exactly the record prefix before the damage: a header flip
// empties the store, a flip inside record j keeps records 0..j-1 and
// drops the rest, and refilling heals completely.
func TestChaosEveryByteFlipRecovers(t *testing.T) {
	const n = 4
	seed := chaosSeed(t)
	rng := faults.NewSchedule(seed, faults.Plan{}) // seeded masks only
	offs, pristine := recordOffsets(t, n)
	dir := t.TempDir()
	s := openT(t, dir, testEngine)
	path := s.Path()
	s.Close()

	for off := int64(0); off < offs[n]; off++ {
		mask := byte(rng.TearPoint(255) + 1) // seeded, never zero
		blob := append([]byte(nil), pristine...)
		blob[off] ^= mask
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatalf("flip@%d: %v", off, err)
		}
		kept := 0
		if off >= offs[0] {
			for offs[kept+1] <= off {
				kept++
			}
		}
		s := openT(t, dir, testEngine)
		if s.Len() != kept {
			t.Fatalf("flip@%d mask %#x: Len = %d, want %d", off, mask, s.Len(), kept)
		}
		wantCells(t, s, seq(0, kept), seq(kept, n))
		// Damaged cells re-simulate and refill; the store heals.
		fillN(t, s, n)
		if err := s.Close(); err != nil {
			t.Fatalf("flip@%d: Close: %v", off, err)
		}
		s2 := openT(t, dir, testEngine)
		if s2.Len() != n {
			t.Fatalf("flip@%d: after heal: Len = %d, want %d", off, s2.Len(), n)
		}
		wantCells(t, s2, seq(0, n), nil)
		s2.Close()
	}
}

// armed passes every op through until armed: the store's own Open must
// succeed (a faulted header write is a legitimate Open failure, not the
// scenario under test), so the schedule only kicks in once the fills
// start.
type armed struct {
	inner faults.Injector
	on    atomic.Bool
}

func (a *armed) Decide(op faults.Op, n int) faults.Decision {
	if !a.on.Load() {
		return faults.Decision{}
	}
	return a.inner.Decide(op, n)
}

// TestChaosSeededWriteFaults runs a long fill sequence under a seeded
// schedule of write errors, short writes, and fsync failures, and
// asserts the global invariant: whatever the fault pattern, the
// reopened store holds a subset of the filled cells with every value
// intact, and a fault-free refill pass heals it to the complete set.
func TestChaosSeededWriteFaults(t *testing.T) {
	const n = 120
	seed := chaosSeed(t)
	sched := faults.NewSchedule(seed, faults.Plan{
		WriteError: 0.15,
		ShortWrite: 0.15,
		SyncError:  0.10,
	})
	inj := &armed{inner: sched}
	dir := t.TempDir()
	s, err := Open(dir, testEngine,
		WithFile(func(f File) File { return faults.NewFile(f, inj) }),
		WithBreaker(3, 1, 1), // 1ns backoff: probes re-admit immediately
	)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	inj.on.Store(true)
	for i := 0; i < n; i++ {
		s.Fill(cellKey(i), cellRes(i))
	}
	if sched.Injected() == 0 {
		t.Fatal("schedule injected nothing: the fault seam is not wired")
	}
	s.Close() // may report the degraded circuit; reopen is the check

	s2 := openT(t, dir, testEngine)
	kept := 0
	for i := 0; i < n; i++ {
		res, ok := s2.Lookup(cellKey(i))
		if !ok {
			continue
		}
		if res != cellRes(i) {
			t.Fatalf("cell %d: survived faults with wrong value %+v", i, res)
		}
		kept++
	}
	if s2.Len() != kept {
		t.Fatalf("reopened store has %d cells, %d recognizable", s2.Len(), kept)
	}
	t.Logf("%d/%d cells survived %d injected faults", kept, n, sched.Injected())

	// Fault-free refill: every dropped cell persists this time.
	fillN(t, s2, n)
	if err := s2.Close(); err != nil {
		t.Fatalf("Close after heal: %v", err)
	}
	s3 := openT(t, dir, testEngine)
	defer s3.Close()
	if s3.Len() != n {
		t.Fatalf("after heal: Len = %d, want %d", s3.Len(), n)
	}
	wantCells(t, s3, seq(0, n), nil)
}
