package store

import (
	"errors"
	"strings"
	"testing"
)

// The single-writer guard: a second Open on the same segment directory
// must fail fast with the typed sentinel — two daemons appending to one
// log would interleave records — and closing the first store releases
// the lock for a successor.
func TestOpenSingleWriterGuard(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, 1)
	if err != nil {
		t.Fatalf("first Open: %v", err)
	}

	s2, err := Open(dir, 1)
	if err == nil {
		s2.Close()
		t.Fatal("second Open succeeded; want ErrLocked")
	}
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open error = %v, want errors.Is ErrLocked", err)
	}
	if !strings.Contains(err.Error(), "already open") {
		t.Fatalf("second Open error %q does not explain the conflict", err)
	}

	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s3, err := Open(dir, 1)
	if err != nil {
		t.Fatalf("re-Open after Close: %v", err)
	}
	if err := s3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
