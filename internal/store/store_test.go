package store

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"tooleval/internal/runner"
)

const testEngine uint64 = 7

func cellKey(i int) runner.Key {
	return runner.Key{
		Platform: fmt.Sprintf("plat-%d", i%3),
		Tool:     fmt.Sprintf("tool-%d", i%5),
		Bench:    fmt.Sprintf("bench-%d", i),
		Procs:    1 + i%16,
		Size:     64 << (i % 4),
		Scale:    0.25,
	}
}

func cellRes(i int) runner.CellResult {
	return runner.CellResult{
		Value:   float64(i) * 1.5,
		Virtual: time.Duration(i) * time.Millisecond,
	}
}

func openT(t *testing.T, dir string, engine uint64) *Store {
	t.Helper()
	s, err := Open(dir, engine)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return s
}

func fillN(t *testing.T, s *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		s.Fill(cellKey(i), cellRes(i))
	}
	if err := s.Err(); err != nil {
		t.Fatalf("write error after %d fills: %v", n, err)
	}
}

func wantCells(t *testing.T, s *Store, present, absent []int) {
	t.Helper()
	for _, i := range present {
		res, ok := s.Lookup(cellKey(i))
		if !ok {
			t.Fatalf("cell %d: missing, want present", i)
		}
		if res != cellRes(i) {
			t.Fatalf("cell %d: got %+v, want %+v", i, res, cellRes(i))
		}
	}
	for _, i := range absent {
		if _, ok := s.Lookup(cellKey(i)); ok {
			t.Fatalf("cell %d: present, want absent", i)
		}
	}
}

func seq(lo, hi int) []int {
	var out []int
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestRoundtripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, testEngine)
	fillN(t, s, 40)
	wantCells(t, s, seq(0, 40), nil)
	if s.Len() != 40 {
		t.Fatalf("Len = %d, want 40", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openT(t, dir, testEngine)
	defer s2.Close()
	if s2.Len() != 40 {
		t.Fatalf("reopened Len = %d, want 40", s2.Len())
	}
	wantCells(t, s2, seq(0, 40), nil)
}

func TestFillDeduplicates(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, testEngine)
	s.Fill(cellKey(0), cellRes(0))
	size1 := segSize(t, s)
	s.Fill(cellKey(0), runner.CellResult{Value: 999}) // ignored: cells are deterministic
	if got := segSize(t, s); got != size1 {
		t.Fatalf("duplicate Fill grew the segment: %d -> %d", size1, got)
	}
	wantCells(t, s, []int{0}, nil)
	s.Close()
}

func TestFillAfterCloseIsNoOp(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, testEngine)
	fillN(t, s, 3)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s.Fill(cellKey(9), cellRes(9)) // must not panic or write
	wantCells(t, s, seq(0, 3), []int{9})
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func segSize(t *testing.T, s *Store) int64 {
	t.Helper()
	fi, err := os.Stat(s.Path())
	if err != nil {
		t.Fatalf("stat segment: %v", err)
	}
	return fi.Size()
}

// corrupt flips one byte of the segment file at offset off.
func corrupt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("open segment for corruption: %v", err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatalf("read byte at %d: %v", off, err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatalf("write byte at %d: %v", off, err)
	}
}

// Torn tails and mid-file corruption are covered exhaustively by the
// chaos property tests (chaos_test.go): every truncation length, every
// single-byte flip, every short-write tear point. Only the header case
// keeps a hand-written test, for its distinct reset-wholesale behavior.

func TestCorruptHeaderEmptiesStore(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, testEngine)
	fillN(t, s, 5)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	corrupt(t, s.Path(), 2) // inside the magic

	s2 := openT(t, dir, testEngine)
	if s2.Len() != 0 {
		t.Fatalf("after header corruption: Len = %d, want 0", s2.Len())
	}
	fillN(t, s2, 5)
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s3 := openT(t, dir, testEngine)
	defer s3.Close()
	wantCells(t, s3, seq(0, 5), nil)
}

func TestEngineVersionMismatchInvalidates(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, testEngine)
	fillN(t, s, 8)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A simulation-core change bumps the engine stamp: every stored cell
	// is untrusted and the store restarts empty under the new stamp.
	s2 := openT(t, dir, testEngine+1)
	if s2.Len() != 0 {
		t.Fatalf("after engine bump: Len = %d, want 0", s2.Len())
	}
	fillN(t, s2, 8)
	if err := s2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopening under the new version keeps the refilled cells...
	s3 := openT(t, dir, testEngine+1)
	if s3.Len() != 8 {
		t.Fatalf("reopen under new engine: Len = %d, want 8", s3.Len())
	}
	s3.Close()

	// ...and going back to the old version invalidates again.
	s4 := openT(t, dir, testEngine)
	defer s4.Close()
	if s4.Len() != 0 {
		t.Fatalf("reopen under old engine: Len = %d, want 0", s4.Len())
	}
}

func TestConcurrentFillLookup(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, testEngine)
	const n = 200
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < n; i += 8 {
				s.Fill(cellKey(i), cellRes(i))
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if res, ok := s.Lookup(cellKey(i)); ok && res != cellRes(i) {
					t.Errorf("cell %d: got %+v", i, res)
					return
				}
				_ = s.Len()
			}
		}()
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := openT(t, dir, testEngine)
	defer s2.Close()
	if s2.Len() != n {
		t.Fatalf("after concurrent fills: Len = %d, want %d", s2.Len(), n)
	}
	wantCells(t, s2, seq(0, n), nil)
}
