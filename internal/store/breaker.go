package store

import "time"

// CircuitState names the store's write-path health.
type CircuitState string

const (
	// CircuitClosed: writes flow normally.
	CircuitClosed CircuitState = "closed"
	// CircuitOpen: writes failed repeatedly; the store is lookup-only
	// until the backoff interval passes.
	CircuitOpen CircuitState = "open"
	// CircuitHalfOpen: the backoff has elapsed; the next Fill is the
	// probe that decides between re-closing and re-opening.
	CircuitHalfOpen CircuitState = "half-open"
)

// Breaker defaults: trip after 3 consecutive write failures, first
// probe after 100ms, backoff doubling up to 10s.
const (
	defaultFailureThreshold = 3
	defaultProbeBackoff     = 100 * time.Millisecond
	defaultMaxBackoff       = 10 * time.Second
)

// breaker is the store's write-path circuit breaker, replacing the old
// latch-forever write error. State is guarded by the Store mutex, so
// the breaker itself carries none.
//
// Closed is normal operation; threshold consecutive failures open the
// circuit (writes are dropped — the store serves lookups only) and
// start the backoff clock. Once the backoff elapses the circuit is
// half-open: exactly one Fill is admitted as a probe. A successful
// probe closes the circuit and clears the error; a failed one re-opens
// it with the backoff doubled (capped), so a persistently sick disk is
// probed ever more rarely instead of hammered.
type breaker struct {
	threshold int
	base, max time.Duration

	open     bool
	failures int   // consecutive failures (resets on success)
	err      error // last write failure; nil when healthy
	backoff  time.Duration
	retryAt  time.Time

	trips   int64 // times the circuit opened
	probes  int64 // half-open probes admitted
	dropped int64 // fills skipped while open
}

func newBreaker(threshold int, base, max time.Duration) *breaker {
	if threshold <= 0 {
		threshold = defaultFailureThreshold
	}
	if base <= 0 {
		base = defaultProbeBackoff
	}
	if max < base {
		max = defaultMaxBackoff
		if max < base {
			max = base
		}
	}
	return &breaker{threshold: threshold, base: base, max: max}
}

// state reports the externally observable circuit state at time now.
// Half-open is the open circuit whose backoff has elapsed: the next
// admitted Fill will be the probe.
func (b *breaker) state(now time.Time) CircuitState {
	switch {
	case !b.open:
		return CircuitClosed
	case now.Before(b.retryAt):
		return CircuitOpen
	default:
		return CircuitHalfOpen
	}
}

// allow reports whether a Fill may attempt its write at time now. An
// open circuit admits nothing until the backoff elapses, then admits
// the probe (and pushes retryAt forward so a probe that hangs does not
// let a burst of fills pile in behind it).
func (b *breaker) allow(now time.Time) bool {
	if !b.open {
		return true
	}
	if now.Before(b.retryAt) {
		b.dropped++
		return false
	}
	b.probes++
	b.retryAt = now.Add(b.backoff)
	return true
}

// fail records a write failure at time now, opening (or re-opening
// with doubled backoff) the circuit when the threshold is reached.
func (b *breaker) fail(now time.Time, err error) {
	b.err = err
	if b.open {
		// The probe failed: stay open, back off harder.
		b.backoff *= 2
		if b.backoff > b.max {
			b.backoff = b.max
		}
		b.retryAt = now.Add(b.backoff)
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.open = true
		b.trips++
		b.backoff = b.base
		b.retryAt = now.Add(b.backoff)
	}
}

// ok records a successful write: consecutive-failure state clears, and
// an open circuit (the probe succeeded) closes.
func (b *breaker) ok() {
	b.open = false
	b.failures = 0
	b.err = nil
	b.backoff = 0
	b.retryAt = time.Time{}
}

// Health is a snapshot of the store's write-path circuit, for
// /healthz, /statsz, and tests.
type Health struct {
	// State is the circuit state: closed (healthy), open (lookup-only,
	// waiting out the backoff), or half-open (next Fill probes).
	State CircuitState
	// Err is the last write failure; nil when the circuit is closed.
	Err error
	// Failures counts consecutive write failures since the last
	// success.
	Failures int
	// Trips counts how many times the circuit has opened.
	Trips int64
	// Probes counts half-open probe writes admitted.
	Probes int64
	// Dropped counts fills skipped while the circuit was open.
	Dropped int64
	// RetryAt is when the open circuit next admits a probe; zero when
	// closed.
	RetryAt time.Time
}

// Health reports the write-path circuit snapshot.
func (s *Store) Health() Health {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b := s.br
	return Health{
		State:    b.state(s.now()),
		Err:      b.err,
		Failures: b.failures,
		Trips:    b.trips,
		Probes:   b.probes,
		Dropped:  b.dropped,
		RetryAt:  b.retryAt,
	}
}
