package store

import (
	"errors"
	"testing"
	"time"
)

var errDiskTest = errors.New("disk failure (test)")

// flakyFile wraps the segment file with test-controlled write behavior:
// pass writes through, fail them outright, or tear them (persist a
// prefix, then fail) — the shape a crash or a full disk leaves behind.
type flakyFile struct {
	inner  File
	mode   int // 0 pass, 1 fail, 2 tear
	tearAt int // prefix length persisted in tear mode
	writes int // Write calls that reached this wrapper
}

const (
	modePass = iota
	modeFail
	modeTear
)

func (f *flakyFile) Write(p []byte) (int, error) {
	f.writes++
	switch f.mode {
	case modeFail:
		return 0, errDiskTest
	case modeTear:
		k := f.tearAt
		if k > len(p) {
			k = len(p)
		}
		n, _ := f.inner.Write(p[:k])
		return n, errDiskTest
	}
	return f.inner.Write(p)
}

func (f *flakyFile) Read(p []byte) (int, error)            { return f.inner.Read(p) }
func (f *flakyFile) Seek(off int64, wh int) (int64, error) { return f.inner.Seek(off, wh) }
func (f *flakyFile) Truncate(size int64) error             { return f.inner.Truncate(size) }
func (f *flakyFile) Sync() error                           { return f.inner.Sync() }
func (f *flakyFile) Close() error                          { return f.inner.Close() }

// fakeClock is a manually advanced time source for the breaker.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// openFlaky opens a store in dir with the flaky file and fake clock
// interposed, tripping after 3 failures with a 1s → 8s backoff.
func openFlaky(t *testing.T, dir string) (*Store, *flakyFile, *fakeClock) {
	t.Helper()
	ff := &flakyFile{}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s, err := Open(dir, testEngine,
		WithFile(func(f File) File { ff.inner = f; return ff }),
		WithBreaker(3, time.Second, 8*time.Second),
		WithClock(clk.now),
	)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, ff, clk
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, ff, clk := openFlaky(t, dir)
	defer s.Close()

	fillN(t, s, 2) // healthy writes
	if h := s.Health(); h.State != CircuitClosed || s.Err() != nil {
		t.Fatalf("healthy store: state %s err %v", h.State, s.Err())
	}

	ff.mode = modeFail
	for i := 2; i < 5; i++ {
		s.Fill(cellKey(i), cellRes(i))
	}
	h := s.Health()
	if h.State != CircuitOpen || h.Trips != 1 || h.Failures != 3 {
		t.Fatalf("after 3 failures: %+v", h)
	}
	if err := s.Err(); !errors.Is(err, errDiskTest) {
		t.Fatalf("Err = %v, want wrapped disk failure", err)
	}

	// Open circuit: fills are dropped without touching the file.
	writesBefore := ff.writes
	s.Fill(cellKey(5), cellRes(5))
	if ff.writes != writesBefore {
		t.Fatal("open circuit attempted a write")
	}
	if h := s.Health(); h.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", h.Dropped)
	}

	// Backoff elapses: half-open, and the disk has healed.
	clk.advance(time.Second)
	if h := s.Health(); h.State != CircuitHalfOpen {
		t.Fatalf("after backoff: state %s", h.State)
	}
	ff.mode = modePass
	s.Fill(cellKey(6), cellRes(6))
	h = s.Health()
	if h.State != CircuitClosed || h.Probes != 1 || s.Err() != nil {
		t.Fatalf("after successful probe: %+v err %v", h, s.Err())
	}
	s.Fill(cellKey(7), cellRes(7))
	s.Fill(cellKey(8), cellRes(8))

	// Everything that reported success survives a reopen; the cells
	// refused while the circuit was open do not.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re := openT(t, dir, testEngine)
	defer re.Close()
	if re.Len() != 5 {
		t.Fatalf("reopened store holds %d cells, want 5", re.Len())
	}
	wantCells(t, re, []int{0, 1, 6, 7, 8}, []int{2, 3, 4, 5})
}

func TestBreakerBackoffDoublesUntilCapped(t *testing.T) {
	s, ff, clk := openFlaky(t, t.TempDir())
	defer s.Close()

	ff.mode = modeFail
	for i := 0; i < 3; i++ {
		s.Fill(cellKey(i), cellRes(i))
	}
	want := time.Second
	start := clk.t
	if h := s.Health(); !h.RetryAt.Equal(start.Add(want)) {
		t.Fatalf("initial retry at %v, want +%v", h.RetryAt, want)
	}
	// Failed probes: backoff 2s, 4s, 8s, then capped at 8s.
	for _, next := range []time.Duration{2 * time.Second, 4 * time.Second, 8 * time.Second, 8 * time.Second} {
		clk.t = s.Health().RetryAt
		s.Fill(cellKey(99), cellRes(99))
		if h := s.Health(); !h.RetryAt.Equal(clk.t.Add(next)) {
			t.Fatalf("retry at %v, want %v after failed probe", h.RetryAt, clk.t.Add(next))
		}
	}
	if h := s.Health(); h.Probes != 4 || h.Trips != 1 {
		t.Fatalf("probes %d trips %d, want 4/1", h.Probes, h.Trips)
	}

	// Close while degraded reports the pending write error.
	if err := s.Close(); !errors.Is(err, errDiskTest) {
		t.Fatalf("Close on open circuit = %v, want disk failure", err)
	}
}

func TestTornWriteRepairedBeforeNextAppend(t *testing.T) {
	dir := t.TempDir()
	s, ff, _ := openFlaky(t, dir)
	defer s.Close()

	fillN(t, s, 3)
	intact := segSize(t, s)

	// One torn append: a frame prefix lands on disk, the write fails.
	ff.mode = modeTear
	ff.tearAt = 7
	s.Fill(cellKey(3), cellRes(3))
	if got := segSize(t, s); got != intact+7 {
		t.Fatalf("segment %d bytes after tear, want %d", got, intact+7)
	}
	if h := s.Health(); h.State != CircuitClosed || h.Failures != 1 {
		t.Fatalf("one failure must not trip: %+v", h)
	}

	// The next append first truncates the torn prefix, so the log stays
	// a clean record sequence — reopen recovers every succeeded fill.
	ff.mode = modePass
	s.Fill(cellKey(4), cellRes(4))
	if h := s.Health(); h.Failures != 0 || s.Err() != nil {
		t.Fatalf("successful write must clear failures: %+v err %v", h, s.Err())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re := openT(t, dir, testEngine)
	defer re.Close()
	if re.Len() != 4 {
		t.Fatalf("reopened store holds %d cells, want 4", re.Len())
	}
	wantCells(t, re, []int{0, 1, 2, 4}, []int{3})
}
