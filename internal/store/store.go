// Package store is the durable, content-addressed result tier behind
// the in-memory runner.Cache: an append-only segment file of memoized
// simulation cells, keyed by runner.Key. It implements runner.Tier, so
// a Cache wired to a Store (Cache.SetTier) consults disk on every miss
// and writes every completed cell through — across process restarts a
// sweep becomes an incremental build, re-simulating only cells the
// store has never seen.
//
// # On-disk layout
//
// One file, <dir>/cells.seg, holding a fixed header followed by
// self-checking records:
//
//	header:  magic "TEVSEG01" | schema version (u32) | engine version (u64)
//	record:  payload length (u32) | payload | CRC-32C of payload (u32)
//	payload: canonical key fields (platform, tool, bench as uvarint-
//	         prefixed strings; procs, size as varints; scale as float64
//	         bits) | key hash (u64) | value float64 bits | virtual ns
//	         (varint)
//
// All fixed-width integers are little-endian. The key hash is
// runner.Key.Hash over the canonical fields — the same content address
// that routes cache stripes and executor shards — recorded per cell and
// re-verified on load.
//
// # Recovery, not rejection
//
// A store must never be the reason a sweep crashes or serves a wrong
// number, so every validation failure degrades to re-simulation:
//
//   - A header from a different schema or engine version means every
//     record is untrusted: the file is truncated to an empty store under
//     the current stamps (simulation-core changes invalidate cleanly).
//   - Loading stops at the first torn or corrupt record — a short tail
//     from a crash mid-append, a payload failing its checksum or its
//     key-hash check — and the file is truncated back to the last good
//     record. The intact prefix is kept; the damaged suffix re-simulates.
//   - Write errors trip a circuit breaker instead of latching the store
//     broken forever: after a few consecutive failures the store
//     degrades to lookup-only, then probes the disk again under
//     exponential backoff and resumes persisting once a probe succeeds.
//     Before any append after a failure, the segment is truncated back
//     to the last fully written record, so a torn half-frame from the
//     failure can never sit in the middle of the log. Err and Health
//     surface the circuit state; Close reports it.
//
// # Fault injection
//
// Every file operation goes through the File interface, and Open's
// WithFile option wraps the segment file — the seam the chaos suite
// uses (internal/faults) to inject write errors, torn writes, and
// fsync failures on a seeded schedule and assert the recovery story
// above actually holds, byte for byte.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"tooleval/internal/runner"
)

// SchemaVersion is the on-disk record format version. Bump it when the
// header or record encoding changes shape; stores written under another
// schema are discarded wholesale on open.
const SchemaVersion = 1

// SegmentName is the segment file's name inside the store directory.
const SegmentName = "cells.seg"

var magic = [8]byte{'T', 'E', 'V', 'S', 'E', 'G', '0', '1'}

const headerSize = len(magic) + 4 + 8 // magic | schema u32 | engine u64

// maxPayload bounds a single record. Key strings are catalog names and
// benchmark ids — a length prefix beyond this is corruption, not data.
const maxPayload = 1 << 16

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrLocked is the sentinel under every "segment already open"
// failure: another store (in this process or another) holds the
// exclusive lock on the segment file. Match with errors.Is.
var ErrLocked = errors.New("store: segment locked by another store")

// File is the file-operation surface the store drives — the subset of
// *os.File it actually uses. internal/faults declares the same
// interface structurally and wraps it with seeded fault injection; the
// WithFile option is where a wrapped file slides in under the store.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Store is the disk-backed cell tier. It is safe for concurrent use;
// the full index is kept in memory (one sweep's matrix is hundreds of
// cells, a long-lived serving store maybe millions — both trivially
// resident), so Lookup never touches the file. The zero value is not
// usable; call Open.
type Store struct {
	mu       sync.RWMutex
	f        File
	index    map[runner.Key]runner.CellResult
	path     string
	br       *breaker
	now      func() time.Time
	goodOff  int64 // file offset just past the last fully written record
	dirty    bool  // a failed write may have left bytes past goodOff
	closed   bool
	closeErr error  // Close's result, replayed on repeat calls
	buf      []byte // record scratch buffer, reused under mu
}

var _ runner.Tier = (*Store)(nil)

// Option configures a Store at Open.
type Option func(*Store)

// WithFile wraps the opened segment file before recovery runs. The
// chaos suite uses it to interpose faults.FaultyFile; production code
// has no reason to.
func WithFile(wrap func(File) File) Option {
	return func(s *Store) { s.f = wrap(s.f) }
}

// WithBreaker tunes the write-path circuit breaker: trip after
// threshold consecutive failures, probe after base, backing off
// exponentially up to max. Non-positive values keep the defaults.
func WithBreaker(threshold int, base, max time.Duration) Option {
	return func(s *Store) { s.br = newBreaker(threshold, base, max) }
}

// WithClock substitutes the breaker's time source, for tests that
// drill the open → half-open → closed cycle without sleeping.
func WithClock(now func() time.Time) Option {
	return func(s *Store) { s.now = now }
}

// Open opens (creating if needed) the result store in dir, stamped with
// the given engine version. Recovery is part of opening: a segment file
// written under a different schema or engine version is emptied, and a
// torn or corrupt tail is truncated back to the last intact record —
// see the package comment. Open fails only on real IO errors
// (permissions, not-a-directory), never on damaged contents.
func Open(dir string, engineVersion uint64, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, SegmentName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Single-writer guard: take an exclusive advisory lock on the
	// segment before anything reads or writes it. Two daemons appending
	// to one log would interleave records into garbage both would then
	// "recover" by truncating each other's cells — fail the second open
	// fast and loudly instead. The lock lives on the file description
	// and is released when the store closes.
	if err := lockFile(f); err != nil {
		f.Close()
		if errors.Is(err, ErrLocked) {
			return nil, fmt.Errorf("store: %s is already open in another process (the segment file allows one writer; give each daemon its own -store directory): %w", dir, err)
		}
		return nil, fmt.Errorf("store: locking %s: %w", path, err)
	}
	s := &Store{
		f:     f,
		index: make(map[runner.Key]runner.CellResult),
		path:  path,
		br:    newBreaker(0, 0, 0),
		now:   time.Now,
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.load(engineVersion); err != nil {
		s.f.Close()
		return nil, err
	}
	return s, nil
}

// load reads the whole segment, verifying the header and every record,
// and leaves the file truncated to its valid prefix with the write
// offset at the end.
func (s *Store) load(engineVersion uint64) error {
	blob, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", s.path, err)
	}
	if !validHeader(blob, engineVersion) {
		// Fresh store, foreign schema, or a stale engine: every record is
		// untrusted. Restart the file under the current stamps.
		return s.reset(engineVersion)
	}
	good := headerSize // offset after the last fully valid record
	for off := headerSize; off < len(blob); {
		n, key, res, ok := decodeRecord(blob[off:])
		if !ok {
			break // torn or corrupt: keep the prefix, drop the rest
		}
		s.index[key] = res
		off += n
		good = off
	}
	if good < len(blob) {
		if err := s.f.Truncate(int64(good)); err != nil {
			return fmt.Errorf("store: truncating torn tail of %s: %w", s.path, err)
		}
	}
	if _, err := s.f.Seek(int64(good), io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.goodOff = int64(good)
	return nil
}

// reset truncates the segment to an empty store under the current
// version stamps.
func (s *Store) reset(engineVersion uint64) error {
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic[:]...)
	hdr = binary.LittleEndian.AppendUint32(hdr, SchemaVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, engineVersion)
	if _, err := s.f.Write(hdr); err != nil {
		return fmt.Errorf("store: writing header: %w", err)
	}
	s.goodOff = int64(headerSize)
	return nil
}

func validHeader(blob []byte, engineVersion uint64) bool {
	if len(blob) < headerSize {
		return false
	}
	if string(blob[:len(magic)]) != string(magic[:]) {
		return false
	}
	if binary.LittleEndian.Uint32(blob[len(magic):]) != SchemaVersion {
		return false
	}
	return binary.LittleEndian.Uint64(blob[len(magic)+4:]) == engineVersion
}

// Lookup returns the stored result for key, if present. It implements
// runner.Tier.
func (s *Store) Lookup(key runner.Key) (runner.CellResult, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	res, ok := s.index[key]
	return res, ok
}

// Fill appends the cell to the segment and indexes it. It implements
// runner.Tier: errors feed the circuit breaker (surfaced by Err,
// Health, and Close) instead of propagating into the simulation path,
// and a key the store already holds is not re-appended — cells are
// deterministic, so the stored record is already the record.
func (s *Store) Fill(key runner.Key, res runner.CellResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.index[key]; ok {
		return
	}
	if !s.br.allow(s.now()) {
		return // circuit open: lookup-only until the backoff elapses
	}
	// A failed write may have left a torn half-frame past goodOff; cut
	// it off before appending so the log stays a clean record sequence.
	if s.dirty {
		if err := s.repair(); err != nil {
			s.br.fail(s.now(), fmt.Errorf("store: repairing %s: %w", s.path, err))
			return
		}
	}
	// One contiguous [len | payload | crc] frame, one Write call: a crash
	// can tear the tail record but never interleave two.
	frame := append(s.buf[:0], 0, 0, 0, 0) // length prefix, patched below
	frame = appendPayload(frame, key, res)
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-4))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(frame[4:], crcTable))
	n, err := s.f.Write(frame)
	s.buf = frame[:0]
	if err == nil && n < len(frame) {
		err = io.ErrShortWrite
	}
	if err != nil {
		s.dirty = true
		s.br.fail(s.now(), fmt.Errorf("store: appending to %s: %w", s.path, err))
		return
	}
	s.goodOff += int64(len(frame))
	s.br.ok()
	s.index[key] = res
}

// repair truncates the segment back to the last fully written record
// and repositions the write offset there. Called with mu held.
func (s *Store) repair() error {
	if err := s.f.Truncate(s.goodOff); err != nil {
		return err
	}
	if _, err := s.f.Seek(s.goodOff, io.SeekStart); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// Len reports how many cells the store holds.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Path returns the segment file's path.
func (s *Store) Path() string { return s.path }

// Err returns the last write error while the circuit is not closed,
// and nil once the store has recovered (a successful probe clears it).
// A store with an open circuit still serves lookups; it just is not
// persisting new cells until a probe succeeds.
func (s *Store) Err() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return s.closeErr
	}
	if s.br.open {
		return s.br.err
	}
	return nil
}

// Close syncs and closes the segment file. It returns the circuit's
// pending write error if the store closed while degraded, or the
// sync/close error itself. After Close, Fill is a no-op and Lookup
// still answers from the in-memory index (a cache holding a closed tier
// keeps working; it just stops gaining durability).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.closeErr
	}
	s.closed = true
	var err error
	if s.br.open {
		err = s.br.err
	}
	if serr := s.f.Sync(); err == nil && serr != nil {
		err = fmt.Errorf("store: syncing %s: %w", s.path, serr)
	}
	if cerr := s.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("store: closing %s: %w", s.path, cerr)
	}
	s.closeErr = err
	return err
}

// appendPayload encodes one cell record's payload onto buf.
func appendPayload(buf []byte, key runner.Key, res runner.CellResult) []byte {
	buf = appendString(buf, key.Platform)
	buf = appendString(buf, key.Tool)
	buf = appendString(buf, key.Bench)
	buf = binary.AppendVarint(buf, int64(key.Procs))
	buf = binary.AppendVarint(buf, int64(key.Size))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(key.Scale))
	buf = binary.LittleEndian.AppendUint64(buf, key.Hash())
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(res.Value))
	buf = binary.AppendVarint(buf, int64(res.Virtual))
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decodeRecord decodes one framed record from the front of blob,
// returning the total frame length consumed. ok is false for anything
// other than a fully intact record: a torn frame, a checksum mismatch,
// a malformed payload, or a key whose recorded hash does not match its
// fields.
func decodeRecord(blob []byte) (n int, key runner.Key, res runner.CellResult, ok bool) {
	if len(blob) < 4 {
		return 0, key, res, false
	}
	plen := int(binary.LittleEndian.Uint32(blob))
	if plen <= 0 || plen > maxPayload || len(blob) < 4+plen+4 {
		return 0, key, res, false
	}
	payload := blob[4 : 4+plen]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(blob[4+plen:]) {
		return 0, key, res, false
	}
	key, res, ok = decodePayload(payload)
	if !ok {
		return 0, key, res, false
	}
	return 4 + plen + 4, key, res, true
}

func decodePayload(p []byte) (key runner.Key, res runner.CellResult, ok bool) {
	var hash uint64
	if key.Platform, p, ok = takeString(p); !ok {
		return key, res, false
	}
	if key.Tool, p, ok = takeString(p); !ok {
		return key, res, false
	}
	if key.Bench, p, ok = takeString(p); !ok {
		return key, res, false
	}
	var v int64
	if v, p, ok = takeVarint(p); !ok {
		return key, res, false
	}
	key.Procs = int(v)
	if v, p, ok = takeVarint(p); !ok {
		return key, res, false
	}
	key.Size = int(v)
	var u uint64
	if u, p, ok = takeUint64(p); !ok {
		return key, res, false
	}
	key.Scale = math.Float64frombits(u)
	if hash, p, ok = takeUint64(p); !ok {
		return key, res, false
	}
	if hash != key.Hash() {
		return key, res, false // fields and fingerprint disagree: corrupt
	}
	if u, p, ok = takeUint64(p); !ok {
		return key, res, false
	}
	res.Value = math.Float64frombits(u)
	if v, p, ok = takeVarint(p); !ok {
		return key, res, false
	}
	res.Virtual = time.Duration(v)
	return key, res, len(p) == 0 // trailing bytes inside the frame: corrupt
}

func takeString(p []byte) (string, []byte, bool) {
	l, n := binary.Uvarint(p)
	if n <= 0 || l > uint64(len(p)-n) {
		return "", p, false
	}
	return string(p[n : n+int(l)]), p[n+int(l):], true
}

func takeVarint(p []byte) (int64, []byte, bool) {
	v, n := binary.Varint(p)
	if n <= 0 {
		return 0, p, false
	}
	return v, p[n:], true
}

func takeUint64(p []byte) (uint64, []byte, bool) {
	if len(p) < 8 {
		return 0, p, false
	}
	return binary.LittleEndian.Uint64(p), p[8:], true
}
