//go:build !unix

package store

import "os"

// lockFile is a no-op where flock(2) does not exist: the single-writer
// guard degrades to the documented convention of one daemon per -store
// directory.
func lockFile(*os.File) error { return nil }
