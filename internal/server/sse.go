package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// sseStream serializes server-sent events onto one HTTP response.
// Session events arrive from concurrent worker goroutines, so every
// send locks; each event is flushed immediately (a stream that batches
// is not a stream). A write error — the client went away — latches the
// stream closed and later sends are dropped: the job's fate is decided
// by its context (cancelled via the request), not by write failures.
//
// Backpressure is deliberate: a slow consumer blocks the goroutine
// delivering its event, which is one of its own job's workers — a
// tenant reading slowly slows only its own sweep, never another
// tenant's (coalesced waiters on a shared cell are woken before the
// owner's sink runs).
type sseStream struct {
	mu  sync.Mutex
	w   http.ResponseWriter
	f   http.Flusher
	err error
}

// newSSE prepares w for event streaming and writes the SSE headers.
func newSSE(w http.ResponseWriter) (*sseStream, error) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("server: response writer cannot stream (no http.Flusher)")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // common reverse proxies buffer otherwise
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseStream{w: w, f: f}, nil
}

// send emits one "event:"/"data:" frame with data as JSON and flushes.
func (s *sseStream) send(event string, data any) {
	blob, err := json.Marshal(data)
	if err != nil {
		// Wire structs are marshal-safe by construction; a failure here
		// is a programming error worth surfacing loudly in tests.
		panic(fmt.Sprintf("server: marshalling %s event: %v", event, err))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", event, blob); err != nil {
		s.err = err
		return
	}
	s.f.Flush()
}
