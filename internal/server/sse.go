package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// sseStream serializes server-sent events onto one HTTP response.
// Every send locks and flushes immediately (a stream that batches is
// not a stream). A write error — the client went away — latches the
// stream closed and later sends are dropped: the job's fate is decided
// by the resume watchdog (job.detach), not by write failures.
//
// Streams read from the per-job eventLog rather than sitting in the
// simulation's event path, so a slow consumer falls behind its job's
// replay buffer (and eventually sees a "gap" event) instead of
// blocking the worker goroutines publishing events.
type sseStream struct {
	mu  sync.Mutex
	w   http.ResponseWriter
	f   http.Flusher
	err error
}

// newSSE prepares w for event streaming and writes the SSE headers.
func newSSE(w http.ResponseWriter) (*sseStream, error) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("server: response writer cannot stream (no http.Flusher)")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // common reverse proxies buffer otherwise
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseStream{w: w, f: f}, nil
}

// send emits one "event:"/"data:" frame with data as JSON and flushes.
// Events without a log id (errors, gap notices) use it directly.
func (s *sseStream) send(event string, data any) {
	s.sendRaw(0, event, marshalEvent(event, data))
}

// sendRaw emits one frame from pre-marshalled JSON; id > 0 adds the
// "id:" line that makes the frame resumable via Last-Event-ID.
func (s *sseStream) sendRaw(id int64, event string, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	var err error
	if id > 0 {
		_, err = fmt.Fprintf(s.w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, blob)
	} else {
		_, err = fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", event, blob)
	}
	if err != nil {
		s.err = err
		return
	}
	s.f.Flush()
}

// failed reports whether the stream has latched a write error (the
// client disconnected); forwarders use it to stop draining the log.
func (s *sseStream) failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err != nil
}

// marshalEvent renders an event payload. Wire structs are marshal-safe
// by construction; a failure here is a programming error worth
// surfacing loudly in tests.
func marshalEvent(event string, data any) []byte {
	blob, err := json.Marshal(data)
	if err != nil {
		panic(fmt.Sprintf("server: marshalling %s event: %v", event, err))
	}
	return blob
}
