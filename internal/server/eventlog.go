package server

import "sync"

// logEvent is one SSE frame as recorded: a monotonically increasing id
// (1-based, per job), the event name, and the pre-marshalled JSON
// payload. Encoding once at append time means every subscriber — live
// or resuming — sends byte-identical frames.
type logEvent struct {
	id   int64
	name string
	data []byte
}

// eventLog is a job's bounded replay buffer: every lifecycle event the
// sweep emits is appended here, and SSE subscribers drain it at their
// own pace. The log is the decoupling point that makes streams
// resumable — a client that vanishes loses its connection, not its
// place; reconnecting with Last-Event-ID replays everything after that
// id and then continues live.
//
// The buffer is bounded (cap events): a subscriber that falls more
// than cap events behind finds the oldest entries evicted and is told
// how many it missed (a "gap" event on the wire) instead of stalling
// the sweep. That bound is also why append never blocks — workers
// publish and move on, so a slow reader can no longer hold up its own
// job's simulation goroutines.
type eventLog struct {
	mu      sync.Mutex
	buf     []logEvent
	base    int64 // id of buf[0]; ids below base are evicted
	next    int64 // id the next appended event receives
	cap     int
	closed  bool          // no further events: the job finished
	updated chan struct{} // closed and replaced on every append/close
}

func newEventLog(capacity int) *eventLog {
	if capacity <= 0 {
		capacity = 1
	}
	return &eventLog{base: 1, next: 1, cap: capacity, updated: make(chan struct{})}
}

// append records one event, evicting the oldest entry when the buffer
// is full, and wakes every waiting subscriber.
func (l *eventLog) append(name string, data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.buf = append(l.buf, logEvent{id: l.next, name: name, data: data})
	l.next++
	if len(l.buf) > l.cap {
		drop := len(l.buf) - l.cap
		l.buf = append(l.buf[:0], l.buf[drop:]...)
		l.base += int64(drop)
	}
	close(l.updated)
	l.updated = make(chan struct{})
}

// close marks the log complete and wakes subscribers so they can
// drain and hang up. The updated channel is left closed — there is no
// next append to chain to, and a permanently-closed channel means any
// late waiter wakes immediately instead of sleeping forever.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.updated)
}

// since returns a copy of every retained event with id > after, how
// many requested events were already evicted (the subscriber's gap),
// whether the log is complete, and the channel that closes on the next
// append. The contract: replay events, then — if done and nothing new
// arrived — hang up, else wait on updated.
func (l *eventLog) since(after int64) (events []logEvent, missed int64, done bool, updated <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < l.base-1 {
		missed = l.base - 1 - after
		after = l.base - 1
	}
	if n := int(after - l.base + 1); n < len(l.buf) {
		events = make([]logEvent, len(l.buf)-n)
		copy(events, l.buf[n:])
	}
	return events, missed, l.closed, l.updated
}

// lastID returns the id of the most recently appended event, 0 when
// none.
func (l *eventLog) lastID() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next - 1
}
