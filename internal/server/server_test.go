package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tooleval"
	"tooleval/internal/store"
)

// --- test plumbing ----------------------------------------------------

// newTestServer builds a Server and an httptest frontend over its
// handler. The server is closed with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func specsBody(t *testing.T, specs []tooleval.ExperimentSpec) *bytes.Reader {
	t.Helper()
	req := jobRequest{Specs: make([]specWire, len(specs))}
	for i, s := range specs {
		req.Specs[i] = toSpecWire(s)
	}
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(blob)
}

// postJob submits a batch on the blocking JSON path.
func postJob(t *testing.T, base, tenant string, specs []tooleval.ExperimentSpec) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/v1/jobs", specsBody(t, specs))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// streamJob submits a batch on the SSE path and returns the live
// response; the caller owns resp.Body.
func streamJob(t *testing.T, base, tenant string, specs []tooleval.ExperimentSpec) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/v1/jobs", specsBody(t, specs))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stream submit: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream submit: Content-Type %q", ct)
	}
	return resp
}

type sseEvent struct {
	name string
	data []byte
}

// readEvents parses SSE frames from r, calling fn per event until fn
// returns false or the stream ends.
func readEvents(r io.Reader, fn func(sseEvent) bool) error {
	sc := bufio.NewScanner(r)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.name != "" && !fn(ev) {
				return nil
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	return sc.Err()
}

// collectEvents drains a whole SSE stream.
func collectEvents(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var evs []sseEvent
	if err := readEvents(r, func(ev sseEvent) bool { evs = append(evs, ev); return true }); err != nil {
		t.Fatalf("reading SSE: %v", err)
	}
	return evs
}

// localReport runs specs through a plain local Session and renders them
// with MarshalBatchReport — the bytes the server must reproduce.
func localReport(t *testing.T, specs []tooleval.ExperimentSpec) []byte {
	t.Helper()
	sess := tooleval.NewSession()
	defer sess.Close()
	results, errs := sess.SubmitAll(t.Context(), specs)
	blob, err := MarshalBatchReport(results, errs)
	if err != nil {
		t.Fatalf("MarshalBatchReport: %v", err)
	}
	return blob
}

func fetchReport(t *testing.T, base, tenant, jobID string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/v1/jobs/"+jobID+"/report", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func fetchStatus(t *testing.T, base, tenant, jobID string) (int, jobStatusWire) {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/v1/jobs/"+jobID, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatusWire
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

var quickBatch = []tooleval.ExperimentSpec{
	{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0, 64, 1024}},
	{Kind: tooleval.KindRing, Platform: "sun-atm-lan", Tool: "pvm", Procs: 4, Sizes: []int{64}},
	{Kind: tooleval.KindApp, Platform: "sun-ethernet", Tool: "p4", App: "fft2d", ProcsList: []int{1, 2, 4}, Scale: 1},
}

// --- the API surface --------------------------------------------------

// TestSubmitJSONMatchesLocal pins the server's core promise: the report
// a remote tenant gets over HTTP is byte-identical to running the same
// batch through a local Session.
func TestSubmitJSONMatchesLocal(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	want := localReport(t, quickBatch)

	resp := postJob(t, ts.URL, "alice", quickBatch)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("server report differs from local run:\nserver: %s\nlocal:  %s", body, want)
	}

	// The job remains fetchable: same bytes from the report endpoint,
	// settled counters from the status endpoint.
	code, rep := fetchReport(t, ts.URL, "alice", "j-000001")
	if code != http.StatusOK || !bytes.Equal(rep, want) {
		t.Fatalf("report endpoint: status %d, bytes equal %v", code, bytes.Equal(rep, want))
	}
	code, st := fetchStatus(t, ts.URL, "alice", "j-000001")
	if code != http.StatusOK {
		t.Fatalf("status endpoint: %d", code)
	}
	if st.State != jobDone || st.SpecStarts != len(quickBatch) || st.SpecDones != len(quickBatch) || st.Failed != 0 {
		t.Fatalf("status = %+v, want done with %d start/done pairs", st, len(quickBatch))
	}
	if st.Cells == 0 {
		t.Fatal("status reports zero cells for a completed sweep")
	}
}

// TestSubmitSSELifecycle checks the streaming path end to end: event
// ordering and pairing, then report parity with a local run.
func TestSubmitSSELifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	want := localReport(t, quickBatch)

	resp := streamJob(t, ts.URL, "bob", quickBatch)
	evs := collectEvents(t, resp.Body)
	resp.Body.Close()

	if len(evs) < 2 || evs[0].name != "job" || evs[len(evs)-1].name != "job_done" {
		t.Fatalf("stream must open with job and close with job_done; got %d events, first %q last %q",
			len(evs), evs[0].name, evs[len(evs)-1].name)
	}
	var opened jobStatusWire
	if err := json.Unmarshal(evs[0].data, &opened); err != nil {
		t.Fatal(err)
	}
	if opened.State != jobRunning || opened.Specs != len(quickBatch) {
		t.Fatalf("job event = %+v", opened)
	}
	starts, dones, cells := map[int]int{}, map[int]int{}, 0
	for _, ev := range evs {
		switch ev.name {
		case "spec_start":
			var w specStartWire
			if err := json.Unmarshal(ev.data, &w); err != nil {
				t.Fatal(err)
			}
			starts[w.Index]++
		case "spec_done":
			var w specDoneWire
			if err := json.Unmarshal(ev.data, &w); err != nil {
				t.Fatal(err)
			}
			if w.Error != "" {
				t.Fatalf("spec %d failed: %s", w.Index, w.Error)
			}
			dones[w.Index]++
		case "cell":
			cells++
		}
	}
	for i := range quickBatch {
		if starts[i] != 1 || dones[i] != 1 {
			t.Fatalf("spec %d: %d spec_start, %d spec_done; want exactly one pair", i, starts[i], dones[i])
		}
	}
	if cells == 0 {
		t.Fatal("no cell events streamed")
	}
	var closed jobStatusWire
	if err := json.Unmarshal(evs[len(evs)-1].data, &closed); err != nil {
		t.Fatal(err)
	}
	if closed.State != jobDone || closed.Failed != 0 {
		t.Fatalf("job_done = %+v", closed)
	}

	code, rep := fetchReport(t, ts.URL, "bob", closed.Job)
	if code != http.StatusOK {
		t.Fatalf("report: status %d", code)
	}
	if !bytes.Equal(rep, want) {
		t.Fatal("streamed job's report differs from local run")
	}
}

// TestSSEPhaseEvents runs a full evaluation and checks the harness
// phase lifecycle reaches the stream, and that the embedded evaluation
// document matches core.MarshalReport from a local run.
func TestSSEPhaseEvents(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	batch := []tooleval.ExperimentSpec{{Kind: tooleval.KindEvaluate, Scale: 0.1}}
	want := localReport(t, batch)

	resp := streamJob(t, ts.URL, "carol", batch)
	evs := collectEvents(t, resp.Body)
	resp.Body.Close()

	phaseStarts, phaseDones := map[string]int{}, map[string]int{}
	for _, ev := range evs {
		if ev.name != "phase_start" && ev.name != "phase_done" {
			continue
		}
		var w phaseWire
		if err := json.Unmarshal(ev.data, &w); err != nil {
			t.Fatal(err)
		}
		if w.Error != "" {
			t.Fatalf("phase %s failed: %s", w.Phase, w.Error)
		}
		if ev.name == "phase_start" {
			phaseStarts[w.Phase]++
		} else {
			phaseDones[w.Phase]++
		}
	}
	if len(phaseStarts) == 0 {
		t.Fatal("evaluation streamed no phase events")
	}
	for id, n := range phaseStarts {
		if phaseDones[id] != n {
			t.Fatalf("phase %s: %d starts, %d dones", id, n, phaseDones[id])
		}
	}

	var closed jobStatusWire
	if err := json.Unmarshal(evs[len(evs)-1].data, &closed); err != nil {
		t.Fatal(err)
	}
	code, rep := fetchReport(t, ts.URL, "carol", closed.Job)
	if code != http.StatusOK || !bytes.Equal(rep, want) {
		t.Fatalf("evaluation report: status %d, parity %v", code, bytes.Equal(rep, want))
	}

	// ?spec=N narrows to one entry with the evaluation embedded.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+closed.Job+"/report?spec=0", nil)
	req.Header.Set("X-Tenant", "carol")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var one specReportWire
	if err := json.NewDecoder(r2.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusOK || one.Index != 0 || len(one.Evaluation) == 0 {
		t.Fatalf("?spec=0: status %d, entry %+v", r2.StatusCode, one)
	}
}

// TestClientDisconnectCancelsJob is the disconnect drill: an SSE
// consumer drops mid-sweep and nobody reattaches within the resume
// window, so the job's context dies, in-flight specs abort with
// exactly one SpecStart/SpecDone pair each, nothing from the cancelled
// run poisons the shared cache, and an identical resubmission succeeds
// byte-identical to a local run.
func TestClientDisconnectCancelsJob(t *testing.T) {
	_, ts := newTestServer(t, Config{ResumeWindow: 50 * time.Millisecond})
	batch := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindEvaluate, Scale: 0.1},
		{Kind: tooleval.KindApp, Platform: "sun-ethernet", Tool: "p4", App: "psrs", ProcsList: []int{1, 2, 4, 8}, Scale: 1},
	}
	want := localReport(t, batch)

	resp := streamJob(t, ts.URL, "dave", batch)
	var jobID string
	err := readEvents(resp.Body, func(ev sseEvent) bool {
		switch ev.name {
		case "job":
			var w jobStatusWire
			if err := json.Unmarshal(ev.data, &w); err != nil {
				t.Error(err)
				return false
			}
			jobID = w.Job
			return true
		case "cell":
			// The sweep is demonstrably in flight: hang up.
			return false
		}
		return true
	})
	if err != nil {
		t.Fatalf("reading SSE: %v", err)
	}
	resp.Body.Close() // the disconnect

	// The server notices the dead connection and cancels the job.
	deadline := time.Now().Add(15 * time.Second)
	var st jobStatusWire
	for {
		var code int
		code, st = fetchStatus(t, ts.URL, "dave", jobID)
		if code != http.StatusOK {
			t.Fatalf("status: %d", code)
		}
		if st.State != jobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still running %v after disconnect: %+v", 15*time.Second, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != jobCancelled {
		t.Fatalf("state = %q, want %q", st.State, jobCancelled)
	}
	if st.SpecStarts != len(batch) || st.SpecDones != len(batch) {
		t.Fatalf("cancelled job pairs = %d/%d, want %d/%d (one SpecStart/SpecDone per spec)",
			st.SpecStarts, st.SpecDones, len(batch), len(batch))
	}

	// Nothing half-done was cached: the identical batch re-runs clean
	// and lands on the same bytes as an untouched local session.
	resp2 := postJob(t, ts.URL, "dave", batch)
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: status %d: %s", resp2.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("resubmitted batch differs from local run — cancelled cells leaked into the cache")
	}
}

// TestConcurrentJobLimit429 checks the per-tenant job gate: the refusal
// is a typed 429 carrying the same QuotaError shape as budget refusals,
// and the slot frees when the running job ends.
func TestConcurrentJobLimit429(t *testing.T) {
	cfg := Config{
		Tiers:       map[string]QuotaTier{"solo": {Name: "solo", MaxConcurrentJobs: 1}},
		DefaultTier: "solo",
	}
	_, ts := newTestServer(t, cfg)

	slow := []tooleval.ExperimentSpec{{Kind: tooleval.KindEvaluate, Scale: 0.1}}
	resp := streamJob(t, ts.URL, "erin", slow)
	// The job event confirms the slot is held before we contend.
	readEvents(resp.Body, func(ev sseEvent) bool { return ev.name != "job" })

	resp2 := postJob(t, ts.URL, "erin", quickBatch)
	var ew errorWire
	if err := json.NewDecoder(resp2.Body).Decode(&ew); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second job: status %d, want 429", resp2.StatusCode)
	}
	if ew.Quota == nil || ew.Quota.Resource != "concurrent jobs" || ew.Quota.Limit != 1 {
		t.Fatalf("429 body lacks typed quota: %+v", ew)
	}

	// Another tenant is not affected by erin's slot.
	resp3 := postJob(t, ts.URL, "frank", quickBatch)
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("other tenant refused: %d", resp3.StatusCode)
	}

	// Draining erin's stream releases the slot.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp4 := postJob(t, ts.URL, "erin", quickBatch)
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("job after slot release: status %d, want 200", resp4.StatusCode)
	}
}

// TestCellBudget429 checks that an exhausted session budget surfaces as
// a 429 on the blocking path, with the quota detail in the spec error.
func TestCellBudget429(t *testing.T) {
	cfg := Config{
		Tiers:       map[string]QuotaTier{"tiny": {Name: "tiny", MaxCells: 2}},
		DefaultTier: "tiny",
	}
	_, ts := newTestServer(t, cfg)

	resp := postJob(t, ts.URL, "grace", quickBatch)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body: %s", resp.StatusCode, body)
	}
	var rep reportWire
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("429 body is not the batch report: %v", err)
	}
	failed := 0
	for _, sr := range rep.Specs {
		if strings.Contains(sr.Error, "quota") {
			failed++
		}
	}
	if failed == 0 {
		t.Fatalf("no spec carries a quota error: %s", body)
	}
}

// TestTenantNamespacing checks jobs are invisible across tenants and
// /statsz reports both tenants under their tiers.
func TestTenantNamespacing(t *testing.T) {
	cfg := Config{
		Tiers:       map[string]QuotaTier{"free": {Name: "free", MaxConcurrentJobs: 4}},
		TenantTiers: map[string]string{"heidi": "free"},
	}
	_, ts := newTestServer(t, cfg)

	resp := postJob(t, ts.URL, "heidi", quickBatch[:1])
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	if code, _ := fetchStatus(t, ts.URL, "heidi", "j-000001"); code != http.StatusOK {
		t.Fatalf("owner sees job: %d", code)
	}
	if code, _ := fetchStatus(t, ts.URL, "ivan", "j-000001"); code != http.StatusNotFound {
		t.Fatalf("foreign tenant must get 404, got %d", code)
	}
	if code, _ := fetchReport(t, ts.URL, "ivan", "j-000001"); code != http.StatusNotFound {
		t.Fatalf("foreign tenant report must be 404, got %d", code)
	}

	r2, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var stats statszWire
	if err := json.NewDecoder(r2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	h, ok := stats.Tenants["heidi"]
	if !ok {
		t.Fatalf("statsz lacks tenant heidi: %+v", stats.Tenants)
	}
	if h.Tier != "free" || h.JobsDone != 1 || h.SpecsDone != 1 || h.Cells == 0 {
		t.Fatalf("heidi stats = %+v", h)
	}
}

// TestInvalidRequests covers the admission edges: bad tenant ids, bad
// bodies, oversized batches, unknown jobs.
func TestInvalidRequests(t *testing.T) {
	cfg := Config{MaxSpecsPerJob: 2}
	_, ts := newTestServer(t, cfg)

	post := func(tenant, body string) int {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("bad tenant!", `{"specs":[{"kind":"pingpong"}]}`); code != http.StatusBadRequest {
		t.Fatalf("invalid tenant: %d", code)
	}
	if code := post("", `{not json`); code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", code)
	}
	if code := post("", `{"specs":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", code)
	}
	if code := post("", `{"specs":[{"kind":"pingpong"},{"kind":"pingpong"},{"kind":"pingpong"}]}`); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d", code)
	}
	if code, _ := fetchStatus(t, ts.URL, "alice", "j-999999"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", code)
	}

	// Invalid specs inside a valid batch are per-spec errors, not a
	// request error.
	resp := postJob(t, ts.URL, "", []tooleval.ExperimentSpec{{Kind: "frobnicate"}})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalid spec: status %d", resp.StatusCode)
	}
	var rep reportWire
	if err := json.Unmarshal(body, &rep); err != nil || len(rep.Specs) != 1 || rep.Specs[0].Error == "" {
		t.Fatalf("invalid spec must surface per-spec: %s", body)
	}
}

// TestHealthz covers the liveness states: ok, draining (503), and the
// degraded-store rendering.
func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthWire
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, h)
	}

	s.draining.Store(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v", resp.StatusCode, h)
	}
}

// TestHealthFor pins the status mapping, including the degraded-store
// case a live handler only hits when segment writes start failing
// mid-run and the circuit opens.
func TestHealthFor(t *testing.T) {
	if code, h := healthFor(false, nil); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy: %d %+v", code, h)
	}
	if code, h := healthFor(true, nil); code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining: %d %+v", code, h)
	}
	closed := &store.Health{State: store.CircuitClosed}
	if code, h := healthFor(false, closed); code != http.StatusOK || h.Status != "ok" || h.StoreCircuit != "closed" {
		t.Fatalf("healthy store: %d %+v", code, h)
	}
	open := &store.Health{State: store.CircuitOpen, Err: fmt.Errorf("store: write failed: disk full")}
	code, h := healthFor(false, open)
	if code != http.StatusOK || h.Status != "degraded" || h.StoreCircuit != "open" ||
		!strings.Contains(h.StoreError, "disk full") {
		t.Fatalf("degraded: %d %+v", code, h)
	}
	if _, h := healthFor(false, &store.Health{State: store.CircuitHalfOpen}); h.Status != "degraded" || h.StoreCircuit != "half-open" {
		t.Fatalf("half-open: %+v", h)
	}
	// Draining wins over degraded: a draining instance must leave the
	// rotation whatever the store's state.
	if code, h := healthFor(true, open); code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining+degraded: %d %+v", code, h)
	}
}

// TestStoreDurability restarts the server over the same store
// directory: the second instance serves the whole batch from disk and
// still produces byte-identical reports.
func TestStoreDurability(t *testing.T) {
	dir := t.TempDir()
	want := localReport(t, quickBatch)

	s1, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp := postJob(t, ts1.URL, "alice", quickBatch)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("first instance: status %d, parity %v", resp.StatusCode, bytes.Equal(body, want))
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatalf("closing first instance: %v", err)
	}

	s2, ts2 := newTestServer(t, Config{StoreDir: dir})
	if s2.Store().Len() == 0 {
		t.Fatal("restarted store recovered no cells")
	}
	resp = postJob(t, ts2.URL, "bob", quickBatch)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("second instance: status %d, parity %v", resp.StatusCode, bytes.Equal(body, want))
	}
	// Every cell of the restarted run came from the durable tier, not
	// fresh simulation.
	cs := s2.Cache().Stats()
	if cs.Misses != 0 || cs.Hits == 0 {
		t.Fatalf("restarted run simulated fresh cells: hits=%d misses=%d", cs.Hits, cs.Misses)
	}
}

// TestConfigParsing covers the tier flag grammar and Normalize's
// validation.
func TestConfigParsing(t *testing.T) {
	tier, err := ParseTier("free=cells:500,vt:10m,jobs:2")
	if err != nil {
		t.Fatal(err)
	}
	if tier.Name != "free" || tier.MaxCells != 500 || tier.MaxVirtualTime != 10*time.Minute || tier.MaxConcurrentJobs != 2 {
		t.Fatalf("tier = %+v", tier)
	}
	if tier, err := ParseTier("batch=vt:1h"); err != nil || tier.MaxCells != 0 || tier.MaxVirtualTime != time.Hour {
		t.Fatalf("partial tier = %+v, %v", tier, err)
	}
	for _, bad := range []string{"", "=cells:1", "x=cells:-1", "x=vt:wat", "x=widgets:3", "x=cells"} {
		if _, err := ParseTier(bad); err == nil {
			t.Fatalf("ParseTier(%q) accepted", bad)
		}
	}

	if tenant, tname, err := ParseTenantTier("alice=free"); err != nil || tenant != "alice" || tname != "free" {
		t.Fatalf("tenant-tier = %q %q %v", tenant, tname, err)
	}
	for _, bad := range []string{"", "alice", "=free", "alice=", "bad tenant!=free"} {
		if _, _, err := ParseTenantTier(bad); err == nil {
			t.Fatalf("ParseTenantTier(%q) accepted", bad)
		}
	}

	if _, err := New(Config{DefaultTier: "ghost"}); err == nil {
		t.Fatal("unknown default tier accepted")
	}
	if _, err := New(Config{TenantTiers: map[string]string{"a": "ghost"}}); err == nil {
		t.Fatal("unknown tenant tier accepted")
	}

	cfg := Config{Tiers: map[string]QuotaTier{"free": {Name: "free"}}, TenantTiers: map[string]string{"a": "free"}}
	if got := cfg.tierFor("a"); got.Name != "free" {
		t.Fatalf("tierFor(a) = %+v", got)
	}
	if got := cfg.tierFor("other"); got.Name != "unlimited" {
		t.Fatalf("tierFor(other) = %+v", got)
	}
}
