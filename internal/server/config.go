// Package server is toolbenchd: the evaluation methodology as a
// long-running, multi-tenant HTTP service. A tenant POSTs an
// ExperimentSpec batch to /v1/jobs and either streams the sweep's
// lifecycle back as server-sent events (SpecStart/CellEvent/SpecDone
// plus PhaseStart/PhaseDone) or waits for the JSON report; the final
// report is also fetchable at /v1/jobs/{id}/report, with the full
// multi-level evaluation embedded exactly as core.MarshalReport
// renders it.
//
// Each tenant gets its own tooleval.Session under a configured quota
// tier (cell and virtual-time budgets, concurrent-job limit), while
// every session memoizes into one shared striped cache — optionally
// backed by the durable result store — so concurrent tenants
// requesting overlapping matrices deduplicate the simulation work.
// Content-keyed memoization makes the sharing tenant-transparent:
// virtual time keeps every cell deterministic, so a report served from
// another tenant's cells is byte-identical to one simulated fresh.
//
// Production behavior the package owns: typed 429s on quota refusal
// (a *tooleval.QuotaError rides the error JSON), per-job context
// cancellation when a streaming client disconnects (in-flight specs
// abort; cancelled cells are retracted, never cached), graceful drain
// (stop admitting, finish in-flight sweeps under a deadline, flush the
// store), and /healthz + /statsz observability.
package server

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
	"time"

	"tooleval"
)

// QuotaTier bounds what one tenant may consume. The zero value of any
// field means unlimited for that resource.
type QuotaTier struct {
	// Name identifies the tier in config and /statsz.
	Name string
	// MaxCells caps how many cells the tenant's session may simulate
	// over its lifetime (cache hits are free).
	MaxCells int64
	// MaxVirtualTime caps the summed virtual wall-clock the tenant's
	// session may simulate.
	MaxVirtualTime time.Duration
	// MaxConcurrentJobs caps how many jobs the tenant may have in
	// flight at once; the breach is a typed 429, not a queue.
	MaxConcurrentJobs int
}

// Config parameterizes a Server. The zero value is a working
// single-tier development config; Normalize fills the defaults.
type Config struct {
	// Addr is the listen address for ListenAndServe (":8080" style).
	Addr string
	// Parallelism bounds each tenant session's concurrent simulations
	// (0 = GOMAXPROCS).
	Parallelism int
	// Shards selects the sharded executor for tenant sessions (0 =
	// single pool per tenant).
	Shards int
	// CacheStripes splits the shared cell cache into independently
	// locked segments (0 = a sensible default for many tenants).
	CacheStripes int
	// CacheCapacity bounds the shared cache to n cells with LRU
	// eviction (0 = unbounded).
	CacheCapacity int
	// StoreDir attaches the durable result store in this directory to
	// the shared cache ("" = memory only). The server owns the store
	// and flushes it on drain.
	StoreDir string
	// OpenStore overrides how the StoreDir store is opened; nil =
	// tooleval.OpenResultStore. The chaos suite injects stores wrapped
	// with fault-injecting files and tuned circuit breakers here.
	OpenStore func(dir string) (*tooleval.ResultStore, error)
	// DrainTimeout bounds how long Shutdown waits for in-flight sweeps
	// before cancelling them (0 = 30s).
	DrainTimeout time.Duration
	// Tiers is the quota-tier catalog by name. A tier named
	// DefaultTier must exist if any tenant maps to it.
	Tiers map[string]QuotaTier
	// DefaultTier names the tier for tenants absent from TenantTiers
	// ("" = a built-in unlimited tier).
	DefaultTier string
	// TenantTiers maps tenant id -> tier name for tenants with a
	// non-default tier.
	TenantTiers map[string]string
	// MaxJobsRetained bounds how many finished jobs are kept per
	// tenant for report fetching; the oldest finished job is evicted
	// when a new one completes (0 = 64). In-flight jobs are never
	// evicted.
	MaxJobsRetained int
	// MaxSpecsPerJob rejects batches larger than this up front
	// (0 = 1024).
	MaxSpecsPerJob int
	// ResumeWindow is how long a streaming job survives with no
	// attached subscriber before its sweep is cancelled — the grace
	// period for a dropped SSE client to reconnect with Last-Event-ID
	// (0 = 15s; negative = cancel immediately on disconnect, the
	// pre-resume behavior).
	ResumeWindow time.Duration
	// EventBuffer bounds each job's event replay buffer; a subscriber
	// further behind than this sees a "gap" event instead of the
	// evicted entries (0 = 4096).
	EventBuffer int
	// Logf receives one line per lifecycle event (job admitted,
	// drain started, ...); nil disables logging.
	Logf func(format string, args ...any)
}

// Normalize fills defaults in place and validates the tier wiring.
func (c *Config) Normalize() error {
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.CacheStripes <= 0 {
		c.CacheStripes = 16
	}
	if c.MaxJobsRetained <= 0 {
		c.MaxJobsRetained = 64
	}
	if c.MaxSpecsPerJob <= 0 {
		c.MaxSpecsPerJob = 1024
	}
	if c.ResumeWindow == 0 {
		c.ResumeWindow = 15 * time.Second
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 4096
	}
	if c.DefaultTier != "" {
		if _, ok := c.Tiers[c.DefaultTier]; !ok {
			return fmt.Errorf("server: default tier %q is not in the tier catalog", c.DefaultTier)
		}
	}
	for tenant, tier := range c.TenantTiers {
		if _, ok := c.Tiers[tier]; !ok {
			return fmt.Errorf("server: tenant %q maps to unknown tier %q", tenant, tier)
		}
	}
	return nil
}

// tierFor resolves the quota tier for a tenant id: its TenantTiers
// entry, else the default tier, else unlimited.
func (c *Config) tierFor(tenant string) QuotaTier {
	if name, ok := c.TenantTiers[tenant]; ok {
		return c.Tiers[name]
	}
	if c.DefaultTier != "" {
		return c.Tiers[c.DefaultTier]
	}
	return QuotaTier{Name: "unlimited"}
}

// tenantIDPattern is the accepted shape of an X-Tenant header value.
var tenantIDPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// ValidTenantID reports whether id is acceptable as a tenant
// identifier (it becomes a map key and appears in /statsz).
func ValidTenantID(id string) bool { return tenantIDPattern.MatchString(id) }

// ParseTier parses one -tier flag value of the form
//
//	name=cells:<n>,vt:<duration>,jobs:<n>
//
// with any subset of the three budgets (omitted = unlimited), e.g.
// "free=cells:500,jobs:2" or "batch=vt:10m".
func ParseTier(s string) (QuotaTier, error) {
	name, budgets, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return QuotaTier{}, fmt.Errorf("tier %q: want name=budget[,budget...]", s)
	}
	t := QuotaTier{Name: name}
	if budgets == "" {
		return t, nil
	}
	for _, b := range strings.Split(budgets, ",") {
		k, v, ok := strings.Cut(b, ":")
		if !ok {
			return QuotaTier{}, fmt.Errorf("tier %q: budget %q: want key:value", s, b)
		}
		switch k {
		case "cells":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				return QuotaTier{}, fmt.Errorf("tier %q: cells %q: want a non-negative integer", s, v)
			}
			t.MaxCells = n
		case "vt":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return QuotaTier{}, fmt.Errorf("tier %q: vt %q: want a non-negative duration", s, v)
			}
			t.MaxVirtualTime = d
		case "jobs":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return QuotaTier{}, fmt.Errorf("tier %q: jobs %q: want a non-negative integer", s, v)
			}
			t.MaxConcurrentJobs = n
		default:
			return QuotaTier{}, fmt.Errorf("tier %q: unknown budget %q (want cells, vt, or jobs)", s, k)
		}
	}
	return t, nil
}

// ParseTierConfig reads a tier-catalog file (the -tier-file flag, re-
// read on SIGHUP): one directive per line, in exactly the grammar the
// command-line flags use —
//
//	tier <name>=<budgets>        # ParseTier form, e.g. free=cells:500,jobs:2
//	tenant-tier <tenant>=<tier>  # ParseTenantTier form
//	default-tier <name>
//
// Blank lines and #-comments are ignored. The catalog is returned
// unvalidated; ReloadTiers (or Normalize) checks the wiring, so a bad
// file rejects atomically without disturbing the live config.
func ParseTierConfig(r io.Reader) (tiers map[string]QuotaTier, defaultTier string, tenantTiers map[string]string, err error) {
	tiers = make(map[string]QuotaTier)
	tenantTiers = make(map[string]string)
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		directive, arg, ok := strings.Cut(line, " ")
		arg = strings.TrimSpace(arg)
		if !ok || arg == "" {
			return nil, "", nil, fmt.Errorf("tier config line %d: want \"<directive> <value>\", got %q", lineNo, line)
		}
		switch directive {
		case "tier":
			t, perr := ParseTier(arg)
			if perr != nil {
				return nil, "", nil, fmt.Errorf("tier config line %d: %w", lineNo, perr)
			}
			tiers[t.Name] = t
		case "tenant-tier":
			tenant, tier, perr := ParseTenantTier(arg)
			if perr != nil {
				return nil, "", nil, fmt.Errorf("tier config line %d: %w", lineNo, perr)
			}
			tenantTiers[tenant] = tier
		case "default-tier":
			defaultTier = arg
		default:
			return nil, "", nil, fmt.Errorf("tier config line %d: unknown directive %q (want tier, tenant-tier, or default-tier)", lineNo, directive)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", nil, fmt.Errorf("tier config: %w", err)
	}
	return tiers, defaultTier, tenantTiers, nil
}

// ParseTenantTier parses one -tenant-tier flag value "tenant=tier".
func ParseTenantTier(s string) (tenant, tier string, err error) {
	tenant, tier, ok := strings.Cut(s, "=")
	if !ok || tenant == "" || tier == "" {
		return "", "", fmt.Errorf("tenant-tier %q: want tenant=tier", s)
	}
	if !ValidTenantID(tenant) {
		return "", "", fmt.Errorf("tenant-tier %q: invalid tenant id", s)
	}
	return tenant, tier, nil
}
