package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tooleval"
)

// TestLoadManyConcurrentTenants is the capacity drill: many tenants
// stream sweeps concurrently against one server, every stream closes
// with a completed job, and every report is byte-identical to a local
// Session running the same batch. Run with -race in CI; 100 tenants
// normally, 50 in -short mode.
func TestLoadManyConcurrentTenants(t *testing.T) {
	tenants := 100
	if testing.Short() {
		tenants = 50
	}

	// Parallelism 2 bounds total simulation goroutines at 2 per tenant
	// session; the shared cache deduplicates the overlapping cells.
	_, ts := newTestServer(t, Config{Parallelism: 2})

	batches := [][]tooleval.ExperimentSpec{
		{
			{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "p4", Sizes: []int{0, 64, 256, 1024}},
			{Kind: tooleval.KindRing, Platform: "sun-ethernet", Tool: "p4", Procs: 4, Sizes: []int{64, 256}},
		},
		{
			{Kind: tooleval.KindBroadcast, Platform: "sun-atm-lan", Tool: "pvm", Procs: 8, Sizes: []int{64, 1024}},
			{Kind: tooleval.KindApp, Platform: "sun-ethernet", Tool: "p4", App: "fft2d", ProcsList: []int{1, 2, 4}, Scale: 1},
		},
		{
			{Kind: tooleval.KindGlobalSum, Platform: "alpha-fddi", Tool: "p4", Procs: 4, Sizes: []int{16, 64}},
			{Kind: tooleval.KindPingPong, Platform: "sp1-switch", Tool: "pvm", Sizes: []int{0, 256}},
		},
	}
	want := make([][]byte, len(batches))
	for i, b := range batches {
		want[i] = localReport(t, b)
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: tenants}}
	var wg sync.WaitGroup
	errc := make(chan error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t-%03d", i)
			batch := batches[i%len(batches)]

			req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", specsBody(t, batch))
			if err != nil {
				errc <- err
				return
			}
			req.Header.Set("Accept", "text/event-stream")
			req.Header.Set("X-Tenant", tenant)
			resp, err := client.Do(req)
			if err != nil {
				errc <- fmt.Errorf("%s: %w", tenant, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("%s: status %d", tenant, resp.StatusCode)
				return
			}

			var last sseEvent
			starts, dones := 0, 0
			if err := readEvents(resp.Body, func(ev sseEvent) bool {
				last = ev
				switch ev.name {
				case "spec_start":
					starts++
				case "spec_done":
					dones++
				}
				return true
			}); err != nil {
				errc <- fmt.Errorf("%s: reading stream: %w", tenant, err)
				return
			}
			if last.name != "job_done" {
				errc <- fmt.Errorf("%s: stream ended on %q, want job_done", tenant, last.name)
				return
			}
			var closed jobStatusWire
			if err := json.Unmarshal(last.data, &closed); err != nil {
				errc <- fmt.Errorf("%s: %w", tenant, err)
				return
			}
			if closed.State != jobDone || closed.Failed != 0 {
				errc <- fmt.Errorf("%s: job_done = %+v", tenant, closed)
				return
			}
			if starts != len(batch) || dones != len(batch) {
				errc <- fmt.Errorf("%s: %d/%d spec pairs, want %d", tenant, starts, dones, len(batch))
				return
			}

			req2, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+closed.Job+"/report", nil)
			req2.Header.Set("X-Tenant", tenant)
			r2, err := client.Do(req2)
			if err != nil {
				errc <- fmt.Errorf("%s: fetching report: %w", tenant, err)
				return
			}
			body, err := io.ReadAll(r2.Body)
			r2.Body.Close()
			if err != nil || r2.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("%s: report status %d err %v", tenant, r2.StatusCode, err)
				return
			}
			if !bytes.Equal(body, want[i%len(batches)]) {
				errc <- fmt.Errorf("%s: report differs from local run", tenant)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	failures := 0
	for err := range errc {
		failures++
		t.Error(err)
	}
	if failures == 0 {
		t.Logf("%d tenants streamed concurrently, all reports byte-identical to local runs", tenants)
	}
}

// serveForTest runs Server.Serve on a loopback listener and returns
// the base URL, the cancel that starts the drain, and a channel with
// Serve's return value.
func serveForTest(t *testing.T, s *Server) (base string, drain context.CancelFunc, done chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			done <- err
		case <-time.After(60 * time.Second):
			t.Error("Serve did not return after drain")
		}
	})
	return "http://" + ln.Addr().String(), cancel, done
}

// TestDrainMidLoadGraceful cancels the serve context while streams are
// mid-sweep: every in-flight job must run to a clean job_done (the
// drain waits), new submissions must be refused, and Serve must return
// nil within the drain deadline.
func TestDrainMidLoadGraceful(t *testing.T) {
	s, err := New(Config{Parallelism: 2, DrainTimeout: 45 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	base, drain, done := serveForTest(t, s)

	const jobs = 6
	admitted := make(chan struct{}, jobs)
	type outcome struct {
		tenant string
		last   sseEvent
		err    error
	}
	results := make(chan outcome, jobs)
	for i := 0; i < jobs; i++ {
		go func(i int) {
			tenant := fmt.Sprintf("drain-%d", i)
			// Distinct scales make distinct cells, so every job has
			// real simulation left when the drain starts.
			batch := []tooleval.ExperimentSpec{{Kind: tooleval.KindEvaluate, Scale: 0.05 + float64(i)*0.01}}
			req, _ := http.NewRequest("POST", base+"/v1/jobs", specsBody(t, batch))
			req.Header.Set("Accept", "text/event-stream")
			req.Header.Set("X-Tenant", tenant)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				results <- outcome{tenant: tenant, err: err}
				admitted <- struct{}{}
				return
			}
			defer resp.Body.Close()
			var last sseEvent
			first := true
			err = readEvents(resp.Body, func(ev sseEvent) bool {
				if first {
					first = false
					admitted <- struct{}{}
				}
				last = ev
				return true
			})
			results <- outcome{tenant: tenant, last: last, err: err}
		}(i)
	}
	for i := 0; i < jobs; i++ {
		<-admitted
	}

	drain() // SIGTERM equivalent: all jobs are provably in flight

	for i := 0; i < jobs; i++ {
		o := <-results
		if o.err != nil {
			t.Errorf("%s: %v", o.tenant, o.err)
			continue
		}
		if o.last.name != "job_done" {
			t.Errorf("%s: stream ended on %q, want job_done", o.tenant, o.last.name)
			continue
		}
		var closed jobStatusWire
		if err := json.Unmarshal(o.last.data, &closed); err != nil {
			t.Errorf("%s: %v", o.tenant, err)
			continue
		}
		if closed.State != jobDone || closed.Failed != 0 {
			t.Errorf("%s: drained job = %+v, want a clean finish", o.tenant, closed)
		}
	}

	select {
	case err := <-done:
		done <- err
		if err != nil {
			t.Fatalf("graceful drain returned %v, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("Serve did not return")
	}

	// The drained server no longer accepts work.
	resp, err := http.Post(base+"/v1/jobs", "application/json", specsBody(t, quickBatch[:1]))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		code := resp.StatusCode
		resp.Body.Close()
		if code != http.StatusServiceUnavailable {
			t.Fatalf("post-drain submit: status %d, want refusal", code)
		}
	} // a connection error is equally a refusal: the listener is gone
}

// TestDrainDeadlineCancelsStragglers drains with a deadline too short
// for the in-flight job: the job's context must be cancelled (state
// cancelled, spec pairs intact) instead of the drain hanging, and Serve
// reports the deadline breach.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	s, err := New(Config{Parallelism: 2, DrainTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	base, drain, done := serveForTest(t, s)

	batch := []tooleval.ExperimentSpec{{Kind: tooleval.KindEvaluate, Scale: 0.25}}
	req, _ := http.NewRequest("POST", base+"/v1/jobs", specsBody(t, batch))
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("X-Tenant", "straggler")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var jobID string
	readEvents(resp.Body, func(ev sseEvent) bool {
		if ev.name == "job" {
			var w jobStatusWire
			json.Unmarshal(ev.data, &w)
			jobID = w.Job
			return false
		}
		return true
	})
	if jobID == "" {
		t.Fatal("no job event before drain")
	}

	drain()
	// Keep consuming until the forced close severs the stream.
	io.Copy(io.Discard, resp.Body)

	var serveErr error
	select {
	case serveErr = <-done:
		done <- serveErr
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after deadline drain")
	}
	if serveErr == nil {
		t.Fatal("deadline-breaching drain returned nil, want the shutdown error")
	}

	j, ok := s.jobs.get("straggler", jobID)
	if !ok {
		t.Fatalf("job %s vanished", jobID)
	}
	st := j.status()
	if st.State != jobCancelled {
		t.Fatalf("straggler state = %q, want %q", st.State, jobCancelled)
	}
	if st.SpecStarts != 1 || st.SpecDones != 1 {
		t.Fatalf("straggler pairs = %d/%d, want 1/1", st.SpecStarts, st.SpecDones)
	}
}

// TestDrainWithStoreFlushes checks the drain path syncs the durable
// tier: cells simulated right before SIGTERM are on disk for the next
// instance.
func TestDrainWithStoreFlushes(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{StoreDir: dir, DrainTimeout: 45 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	base, drain, done := serveForTest(t, s)

	resp := postJob(t, base, "alice", quickBatch[:1])
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	drain()
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
	done <- nil

	s2, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatalf("reopening store after drain: %v", err)
	}
	defer s2.Close()
	if s2.Store().Len() == 0 {
		t.Fatal("drained store holds no cells")
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
}
