package server

// The wire layer: the JSON shapes of the HTTP API. They deliberately
// mirror — rather than embed — the root package's structs, so the API
// contract is pinned here with lowercase field names and cannot drift
// silently when the Go surface evolves.

import (
	"encoding/json"
	"fmt"

	"tooleval"
)

// specWire is the JSON form of a tooleval.ExperimentSpec.
type specWire struct {
	Kind      string  `json:"kind"`
	Platform  string  `json:"platform,omitempty"`
	Tool      string  `json:"tool,omitempty"`
	Procs     int     `json:"procs,omitempty"`
	Sizes     []int   `json:"sizes,omitempty"`
	App       string  `json:"app,omitempty"`
	ProcsList []int   `json:"procs_list,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	Profile   string  `json:"profile,omitempty"`
}

func (w specWire) spec() tooleval.ExperimentSpec {
	return tooleval.ExperimentSpec{
		Kind:      w.Kind,
		Platform:  w.Platform,
		Tool:      w.Tool,
		Procs:     w.Procs,
		Sizes:     w.Sizes,
		App:       w.App,
		ProcsList: w.ProcsList,
		Scale:     w.Scale,
		Profile:   w.Profile,
	}
}

func toSpecWire(s tooleval.ExperimentSpec) specWire {
	return specWire{
		Kind:      s.Kind,
		Platform:  s.Platform,
		Tool:      s.Tool,
		Procs:     s.Procs,
		Sizes:     s.Sizes,
		App:       s.App,
		ProcsList: s.ProcsList,
		Scale:     s.Scale,
		Profile:   s.Profile,
	}
}

// cellWire is the JSON form of one simulation cell's content key.
type cellWire struct {
	Platform string  `json:"platform"`
	Tool     string  `json:"tool"`
	Bench    string  `json:"bench"`
	Procs    int     `json:"procs,omitempty"`
	Size     int     `json:"size,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
}

func toCellWire(c tooleval.Cell) cellWire {
	return cellWire{Platform: c.Platform, Tool: c.Tool, Bench: c.Bench, Procs: c.Procs, Size: c.Size, Scale: c.Scale}
}

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	Specs []specWire `json:"specs"`
}

// errorWire is every non-2xx response body. Quota is present exactly
// when the refusal unwraps to a *tooleval.QuotaError — the typed form
// of a 429, so clients can distinguish an exhausted budget from a
// malformed request without parsing message strings.
type errorWire struct {
	Error string     `json:"error"`
	Quota *quotaWire `json:"quota,omitempty"`
}

type quotaWire struct {
	Resource string `json:"resource"`
	Used     int64  `json:"used"`
	Limit    int64  `json:"limit"`
}

// Event wire forms, one per tooleval.Event type. The SSE stream tags
// each with its event name (spec_start, cell, spec_done, phase_start,
// phase_done); errors travel as strings, empty meaning none.
type (
	specStartWire struct {
		Index int      `json:"index"`
		Spec  specWire `json:"spec"`
	}
	specDoneWire struct {
		Index int    `json:"index"`
		Error string `json:"error,omitempty"`
	}
	cellEventWire struct {
		Cell   cellWire `json:"cell"`
		Cached bool     `json:"cached"`
		Error  string   `json:"error,omitempty"`
	}
	phaseWire struct {
		Phase string `json:"phase"`
		Error string `json:"error,omitempty"`
	}
)

// eventWire maps a session event to its SSE name and JSON payload.
// Unknown future event types map to ok=false and are not streamed.
func eventWire(ev tooleval.Event) (name string, data any, ok bool) {
	switch e := ev.(type) {
	case tooleval.SpecStart:
		return "spec_start", specStartWire{Index: e.Index, Spec: toSpecWire(e.Spec)}, true
	case tooleval.SpecDone:
		return "spec_done", specDoneWire{Index: e.Index, Error: errString(e.Err)}, true
	case tooleval.CellEvent:
		return "cell", cellEventWire{Cell: toCellWire(e.Cell), Cached: e.Cached, Error: errString(e.Err)}, true
	case tooleval.PhaseStart:
		return "phase_start", phaseWire{Phase: e.Phase}, true
	case tooleval.PhaseDone:
		return "phase_done", phaseWire{Phase: e.Phase, Error: errString(e.Err)}, true
	default:
		return "", nil, false
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// reportWire is the GET /v1/jobs/{id}/report body: one entry per
// submitted spec, in batch order. For "evaluate" specs the evaluation
// field embeds core.MarshalReport's rendering verbatim.
type reportWire struct {
	Specs []specReportWire `json:"specs"`
}

type specReportWire struct {
	Index      int             `json:"index"`
	Spec       specWire        `json:"spec"`
	Error      string          `json:"error,omitempty"`
	Times      []float64       `json:"times,omitempty"`
	App        *appWire        `json:"app,omitempty"`
	Evaluation json.RawMessage `json:"evaluation,omitempty"`
}

type appWire struct {
	Platform string    `json:"platform"`
	App      string    `json:"app"`
	Tool     string    `json:"tool"`
	Procs    []int     `json:"procs"`
	Seconds  []float64 `json:"seconds"`
}

// MarshalBatchReport renders a completed batch as the job-report JSON.
// It is a pure function of the batch outcome — no job ids, tenant
// names, or timestamps — so a report served by toolbenchd is
// byte-identical to the same batch run through a local Session and
// marshalled with this function; the load tests pin exactly that.
func MarshalBatchReport(results []tooleval.Result, errs []error) ([]byte, error) {
	if len(results) != len(errs) {
		return nil, fmt.Errorf("server: %d results vs %d errs", len(results), len(errs))
	}
	out := reportWire{Specs: make([]specReportWire, len(results))}
	for i, res := range results {
		sr := specReportWire{
			Index: i,
			Spec:  toSpecWire(res.Spec),
			Error: errString(errs[i]),
			Times: res.Times,
		}
		if res.Spec.Kind == tooleval.KindApp && errs[i] == nil {
			sr.App = &appWire{
				Platform: res.App.Platform,
				App:      res.App.App,
				Tool:     res.App.Tool,
				Procs:    res.App.Procs,
				Seconds:  res.App.Seconds,
			}
		}
		if res.Evaluation != nil {
			blob, err := tooleval.MarshalReport(res.Evaluation)
			if err != nil {
				return nil, fmt.Errorf("server: spec %d: %w", i, err)
			}
			sr.Evaluation = blob
		}
		out.Specs[i] = sr
	}
	return json.MarshalIndent(out, "", "  ")
}
