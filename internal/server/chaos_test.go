package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tooleval"
	"tooleval/internal/faults"
	"tooleval/internal/sim"
	"tooleval/internal/store"
)

// The TestChaos* tests are the server half of the seeded chaos suite
// (make chaos / the CI chaos job): store faults injected under live
// multi-tenant traffic, the circuit breaker's full open → half-open →
// closed cycle observed through /healthz and /statsz, SSE streams
// resumed from every possible position, and a drain executed while the
// circuit is open. The invariant throughout: faults change cost and
// durability, never report bytes.

func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	seed, pinned := faults.PickSeed("TOOLEVAL_CHAOS_SEED", testing.Short())
	if pinned {
		t.Logf("chaos seed %d (pinned)", seed)
	} else {
		t.Logf("chaos seed %d (rerun with TOOLEVAL_CHAOS_SEED=%d to reproduce)", seed, seed)
	}
	return seed
}

// armedInjector passes everything through until armed — the store must
// open cleanly (a faulted header write is a failed Open, the one path
// that is a real error by contract) before the chaos starts.
type armedInjector struct {
	inner faults.Injector
	armed atomic.Bool
}

func (a *armedInjector) Decide(op faults.Op, n int) faults.Decision {
	if !a.armed.Load() {
		return faults.Decision{}
	}
	return a.inner.Decide(op, n)
}

// faultyOpenStore builds a Config.OpenStore that interposes inj on the
// segment file and tunes the breaker for test-scale timing.
func faultyOpenStore(inj faults.Injector, threshold int, base, max time.Duration) func(string) (*tooleval.ResultStore, error) {
	return func(dir string) (*tooleval.ResultStore, error) {
		return store.Open(dir, sim.EngineVersion,
			store.WithFile(func(f store.File) store.File { return faults.NewFile(f, inj) }),
			store.WithBreaker(threshold, base, max))
	}
}

// idEvent is one SSE frame including its log id (0 when the frame
// carried no id line, e.g. the synthetic "gap" event).
type idEvent struct {
	id   int64
	name string
	data []byte
}

func readIDEvents(r io.Reader, fn func(idEvent) bool) error {
	sc := bufio.NewScanner(r)
	var ev idEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.name != "" && !fn(ev) {
				return nil
			}
			ev = idEvent{}
		case strings.HasPrefix(line, "id: "):
			ev.id, _ = strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	return sc.Err()
}

func collectIDEvents(t *testing.T, r io.Reader) []idEvent {
	t.Helper()
	var evs []idEvent
	if err := readIDEvents(r, func(ev idEvent) bool { evs = append(evs, ev); return true }); err != nil {
		t.Fatalf("reading SSE: %v", err)
	}
	return evs
}

// resumeEvents fetches GET /v1/jobs/{id}/events from a given position,
// alternating between the Last-Event-ID header and the ?after= query so
// both resume spellings stay exercised.
func resumeEvents(t *testing.T, base, tenant, jobID string, after int64, viaHeader bool) []idEvent {
	t.Helper()
	url := base + "/v1/jobs/" + jobID + "/events"
	if !viaHeader {
		url += "?after=" + strconv.FormatInt(after, 10)
	}
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	if viaHeader {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(after, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("resume after %d: status %d: %s", after, resp.StatusCode, body)
	}
	return collectIDEvents(t, resp.Body)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// jobIDFrom extracts the job id from the stream's initial "job" event.
func jobIDFrom(t *testing.T, ev idEvent) string {
	t.Helper()
	if ev.name != "job" {
		t.Fatalf("first event is %q, want job", ev.name)
	}
	var st jobStatusWire
	if err := json.Unmarshal(ev.data, &st); err != nil {
		t.Fatalf("job event: %v", err)
	}
	return st.Job
}

// TestChaosReportParityUnderStoreFaults runs multi-tenant traffic over
// a store whose file randomly fails, tears, and refuses fsync on a
// seeded schedule. Every report — blocking and streamed — must be
// byte-identical to a fault-free local run, every stream must pair its
// spec_start/spec_done events exactly, and /healthz and /statsz must
// stay coherent throughout.
func TestChaosReportParityUnderStoreFaults(t *testing.T) {
	seed := chaosSeed(t)
	sched := faults.NewSchedule(seed, faults.Plan{
		WriteError: 0.35,
		ShortWrite: 0.35,
		SyncError:  0.10,
	})
	inj := &armedInjector{inner: sched}
	_, ts := newTestServer(t, Config{
		StoreDir:  t.TempDir(),
		OpenStore: faultyOpenStore(inj, 2, time.Millisecond, 10*time.Millisecond),
	})
	inj.armed.Store(true)

	// Two distinct batches: the second's cells are fresh, so every job
	// of it drives new writes through the faulted file rather than
	// riding the shared cache.
	variantBatch := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "pvm", Sizes: []int{0, 16, 64, 256, 1024, 4096}},
		{Kind: tooleval.KindRing, Platform: "sun-atm-lan", Tool: "p4", Procs: 8, Sizes: []int{128}},
	}
	wantQuick := localReport(t, quickBatch)
	for _, batch := range [][]tooleval.ExperimentSpec{quickBatch, variantBatch} {
		want := wantQuick
		if len(batch) != len(quickBatch) {
			want = localReport(t, batch)
		}
		for i := 0; i < 3; i++ {
			tenant := fmt.Sprintf("chaos-%d", i)
			resp := postJob(t, ts.URL, tenant, batch)
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d err %v", tenant, resp.StatusCode, err)
			}
			if !bytes.Equal(body, want) {
				t.Fatalf("%s: report under store faults differs from fault-free run", tenant)
			}
		}
	}

	// The streamed lifecycle holds its shape under faults too.
	resp := streamJob(t, ts.URL, "chaos-sse", quickBatch)
	evs := collectIDEvents(t, resp.Body)
	resp.Body.Close()
	starts, dones := 0, 0
	for _, ev := range evs {
		switch ev.name {
		case "spec_start":
			starts++
		case "spec_done":
			dones++
		}
	}
	if starts != len(quickBatch) || dones != len(quickBatch) {
		t.Fatalf("spec_start/spec_done = %d/%d, want %d/%d", starts, dones, len(quickBatch), len(quickBatch))
	}
	code, report := fetchReport(t, ts.URL, "chaos-sse", jobIDFrom(t, evs[0]))
	if code != http.StatusOK || !bytes.Equal(report, wantQuick) {
		t.Fatalf("streamed job's report (status %d) differs from fault-free run", code)
	}

	if sched.Injected() == 0 {
		t.Fatal("schedule injected nothing: the fault seam is not wired")
	}
	var h healthWire
	getJSON(t, ts.URL+"/healthz", &h)
	switch h.StoreCircuit {
	case "closed", "open", "half-open":
	default:
		t.Fatalf("healthz store_circuit = %q", h.StoreCircuit)
	}
	var stats statszWire
	getJSON(t, ts.URL+"/statsz", &stats)
	if stats.Store == nil {
		t.Fatal("statsz has no store section")
	}
	t.Logf("injected %d faults; store: %d cells, circuit %s, %d trips, %d dropped",
		sched.Injected(), stats.Store.Cells, stats.Store.Circuit, stats.Store.Trips, stats.Store.Dropped)
}

// TestChaosCircuitOpensAndRecovers drives the breaker's whole arc
// through the HTTP surface: a healthy store persists, a latched disk
// fault trips the circuit (healthz degrades, statsz counts the trip),
// and once the disk recovers a probe re-closes the circuit and
// persistence resumes — no restart, no lost reports anywhere along the
// way.
func TestChaosCircuitOpensAndRecovers(t *testing.T) {
	sw := faults.NewSwitch()
	s, ts := newTestServer(t, Config{
		StoreDir:  t.TempDir(),
		OpenStore: faultyOpenStore(sw, 2, time.Millisecond, 8*time.Millisecond),
	})

	resp := postJob(t, ts.URL, "drill", quickBatch)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy job: status %d", resp.StatusCode)
	}
	persisted := s.store.Len()
	if persisted == 0 {
		t.Fatal("healthy job persisted nothing")
	}

	// Disk goes bad: a batch of fresh cells fails enough consecutive
	// writes to trip the breaker. Results are unaffected.
	sw.Set(true)
	faulted := []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "pvm", Sizes: []int{0, 64, 256, 1024}},
	}
	resp = postJob(t, ts.URL, "drill", faulted)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted job: status %d", resp.StatusCode)
	}
	var h healthWire
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "degraded" || h.StoreCircuit == "closed" {
		t.Fatalf("with a latched disk fault: healthz = %+v, want degraded/non-closed", h)
	}
	var stats statszWire
	getJSON(t, ts.URL+"/statsz", &stats)
	if stats.Store == nil || stats.Store.Trips < 1 {
		t.Fatalf("statsz after trip: %+v, want trips >= 1", stats.Store)
	}
	if s.store.Len() != persisted {
		t.Fatalf("store grew to %d cells under a dead disk", s.store.Len())
	}

	// Disk recovers: fresh cells drive half-open probes until one
	// succeeds and the circuit re-closes.
	sw.Set(false)
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		probe := []tooleval.ExperimentSpec{
			{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "pvm", Sizes: []int{2048 + i}},
		}
		resp := postJob(t, ts.URL, "drill", probe)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		getJSON(t, ts.URL+"/healthz", &h)
		if h.Status == "ok" && h.StoreCircuit == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("circuit never re-closed after recovery: healthz = %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if s.store.Len() <= persisted {
		t.Fatalf("store has %d cells after recovery, want > %d", s.store.Len(), persisted)
	}
}

// TestChaosSSEResumeEveryIndex completes a streamed job, then replays
// its feed from every possible Last-Event-ID. Each resume must return
// exactly the suffix after that id — same ids, same names, same bytes —
// with no gaps: a client can lose its connection at any frame and
// reconstruct the identical stream.
func TestChaosSSEResumeEveryIndex(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := streamJob(t, ts.URL, "resume", quickBatch)
	full := collectIDEvents(t, resp.Body)
	resp.Body.Close()
	if len(full) < 3 {
		t.Fatalf("only %d events", len(full))
	}
	for i, ev := range full {
		if ev.id != int64(i+1) {
			t.Fatalf("live stream event %d has id %d, want %d", i, ev.id, i+1)
		}
	}
	if full[len(full)-1].name != "job_done" {
		t.Fatalf("stream ended on %q", full[len(full)-1].name)
	}
	jobID := jobIDFrom(t, full[0])

	n := int64(len(full))
	for after := int64(0); after <= n; after++ {
		got := resumeEvents(t, ts.URL, "resume", jobID, after, after%2 == 1)
		want := full[after:]
		if len(got) != len(want) {
			t.Fatalf("resume after %d: %d events, want %d", after, len(got), len(want))
		}
		for i := range got {
			if got[i].id != want[i].id || got[i].name != want[i].name || !bytes.Equal(got[i].data, want[i].data) {
				t.Fatalf("resume after %d: event %d = (%d %q %s), want (%d %q %s)",
					after, i, got[i].id, got[i].name, got[i].data, want[i].id, want[i].name, want[i].data)
			}
		}
	}
	t.Logf("replayed %d-event stream from all %d positions", n, n+1)
}

// TestChaosLiveResumeMidSweep drops a streaming client mid-sweep and
// reconnects with Last-Event-ID while the sweep is still running: the
// resume window must keep the job alive through the disconnect, and the
// resumed stream must continue gap-free from the next id to a clean
// job_done.
func TestChaosLiveResumeMidSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{
		ResumeWindow: 5 * time.Second,
		EventBuffer:  1 << 15,
	})
	slow := []tooleval.ExperimentSpec{{Kind: tooleval.KindEvaluate, Scale: 0.07}}
	resp := streamJob(t, ts.URL, "live", slow)
	var seen []idEvent
	if err := readIDEvents(resp.Body, func(ev idEvent) bool {
		seen = append(seen, ev)
		return len(seen) < 5 // hang up mid-sweep
	}); err != nil {
		t.Fatalf("reading first events: %v", err)
	}
	resp.Body.Close()
	if len(seen) < 5 || seen[len(seen)-1].name == "job_done" {
		t.Fatalf("job finished in %d events before the disconnect could matter", len(seen))
	}
	jobID := jobIDFrom(t, seen[0])
	last := seen[len(seen)-1].id

	rest := resumeEvents(t, ts.URL, "live", jobID, last, true)
	if len(rest) == 0 {
		t.Fatal("resumed stream was empty")
	}
	for i, ev := range rest {
		if ev.id != last+int64(i)+1 {
			t.Fatalf("resumed event %d has id %d, want %d (gap)", i, ev.id, last+int64(i)+1)
		}
	}
	final := rest[len(rest)-1]
	if final.name != "job_done" {
		t.Fatalf("resumed stream ended on %q", final.name)
	}
	var done jobStatusWire
	if err := json.Unmarshal(final.data, &done); err != nil {
		t.Fatal(err)
	}
	if done.State != jobDone || done.Failed != 0 {
		t.Fatalf("resumed job finished %+v, want a clean %s", done, jobDone)
	}
}

// TestChaosGapPastEvictedBuffer resumes from before a tiny replay
// buffer's horizon: the stream must announce exactly how many events
// were lost with one "gap" frame, then replay the retained suffix.
func TestChaosGapPastEvictedBuffer(t *testing.T) {
	const buffer = 8
	_, ts := newTestServer(t, Config{EventBuffer: buffer})
	resp := streamJob(t, ts.URL, "gappy", quickBatch)
	full := collectIDEvents(t, resp.Body)
	resp.Body.Close()
	jobID := jobIDFrom(t, full[0])
	// The live stream attached from event 1, so it saw everything; its
	// last id is the log's length.
	n := full[len(full)-1].id
	if n <= buffer {
		t.Fatalf("job emitted %d events, need > %d to evict", n, buffer)
	}

	got := resumeEvents(t, ts.URL, "gappy", jobID, 0, false)
	if got[0].name != "gap" {
		t.Fatalf("first resumed event is %q, want gap", got[0].name)
	}
	var gap gapWire
	if err := json.Unmarshal(got[0].data, &gap); err != nil {
		t.Fatal(err)
	}
	if gap.Missed != n-buffer {
		t.Fatalf("gap.missed = %d, want %d", gap.Missed, n-buffer)
	}
	tail := got[1:]
	if len(tail) != buffer {
		t.Fatalf("replayed %d retained events, want %d", len(tail), buffer)
	}
	for i, ev := range tail {
		if want := n - int64(buffer) + int64(i) + 1; ev.id != want {
			t.Fatalf("retained event %d has id %d, want %d", i, ev.id, want)
		}
	}
}

// TestChaosDrainWhileCircuitOpen opens the store's circuit with a disk
// fault, then drains the server with a sweep still in flight. The drain
// must finish inside the deadline, run the in-flight job to a clean
// job_done, close every session, sync what the store holds, and report
// the degraded store's latched error instead of swallowing it.
func TestChaosDrainWhileCircuitOpen(t *testing.T) {
	sw := faults.NewSwitch()
	dir := t.TempDir()
	drainTimeout := 45 * time.Second
	// A long probe backoff pins the circuit open across the drain.
	s, err := New(Config{
		StoreDir:     dir,
		OpenStore:    faultyOpenStore(sw, 2, time.Hour, time.Hour),
		DrainTimeout: drainTimeout,
		Parallelism:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, drain, done := serveForTest(t, s)

	resp := postJob(t, base, "drainer", quickBatch)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy job: status %d", resp.StatusCode)
	}
	persisted := s.store.Len()
	if persisted == 0 {
		t.Fatal("healthy job persisted nothing")
	}

	// Trip the circuit, then heal the disk: the breaker stays open (its
	// next probe is an hour away) while the file underneath works again.
	sw.Set(true)
	resp = postJob(t, base, "drainer", []tooleval.ExperimentSpec{
		{Kind: tooleval.KindPingPong, Platform: "sun-ethernet", Tool: "pvm", Sizes: []int{0, 64, 256, 1024}},
	})
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	sw.Set(false)
	if st := s.store.Health().State; st != store.CircuitOpen {
		t.Fatalf("circuit is %s, want %s", st, store.CircuitOpen)
	}

	// One sweep provably in flight when the drain starts.
	stream := streamJob(t, base, "straggler", []tooleval.ExperimentSpec{{Kind: tooleval.KindEvaluate, Scale: 0.06}})
	defer stream.Body.Close()
	var first []idEvent
	if err := readIDEvents(stream.Body, func(ev idEvent) bool {
		first = append(first, ev)
		return len(first) < 2
	}); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	drain()
	rest := collectIDEvents(t, stream.Body)
	if len(rest) == 0 || rest[len(rest)-1].name != "job_done" {
		t.Fatalf("in-flight stream did not reach job_done through the drain")
	}
	serveErr := <-done
	elapsed := time.Since(start)
	done <- serveErr // serveForTest's cleanup reads it again
	if elapsed >= drainTimeout {
		t.Fatalf("drain took %v, deadline %v", elapsed, drainTimeout)
	}
	// The circuit was open at close: the drain surfaces the latched
	// write error rather than pretending the store is healthy.
	if !errors.Is(serveErr, faults.ErrInjected) {
		t.Fatalf("Serve returned %v, want the latched injected write error", serveErr)
	}

	// Everything persisted before the fault survived the degraded drain.
	st, err := store.Open(dir, sim.EngineVersion)
	if err != nil {
		t.Fatalf("reopening store after drain: %v", err)
	}
	defer st.Close()
	if st.Len() < persisted {
		t.Fatalf("reopened store has %d cells, want >= %d", st.Len(), persisted)
	}
	t.Logf("degraded drain finished in %v; %d cells survived", elapsed, st.Len())
}
