package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tooleval"
)

// Server is the toolbenchd state: the shared striped cache (optionally
// backed by the durable store), the tenant registry, the job index,
// and the drain machinery. Build one with New, expose it with Handler
// (tests) or run it with ListenAndServe/Serve (the daemon).
type Server struct {
	cfg   Config
	cache *tooleval.Cache
	store *tooleval.ResultStore // nil without StoreDir
	mux   *http.ServeMux

	// tierMu guards the tier-catalog fields of cfg (Tiers, DefaultTier,
	// TenantTiers), which ReloadTiers swaps at runtime; everything else
	// in cfg is immutable after New.
	tierMu sync.RWMutex

	tenants *registry
	jobs    *jobStore
	started time.Time // for /statsz uptime

	// draining refuses new jobs and tenants while in-flight sweeps
	// finish; hardCtx is cancelled when the drain deadline passes, so
	// the sweeps still running abort instead of holding the process.
	draining   atomic.Bool
	hardCtx    context.Context
	hardCancel context.CancelFunc
	activeJobs sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// New builds a Server from cfg (normalized in place: defaults filled,
// tier wiring validated). With a StoreDir the durable result store is
// opened — recovered, if damaged — and attached behind the shared
// cache, so every tenant's misses consult disk and every simulated
// cell persists across restarts.
func New(cfg Config) (*Server, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	cache := tooleval.NewStripedCache(cfg.CacheStripes)
	if cfg.CacheCapacity > 0 {
		cache.SetCapacity(cfg.CacheCapacity)
	}
	s := &Server{cfg: cfg, cache: cache, started: time.Now()}
	if cfg.StoreDir != "" {
		open := cfg.OpenStore
		if open == nil {
			open = tooleval.OpenResultStore
		}
		store, err := open(cfg.StoreDir)
		if err != nil {
			return nil, err
		}
		cache.SetTier(store)
		s.store = store
	}
	s.hardCtx, s.hardCancel = context.WithCancel(context.Background())
	s.tenants = newRegistry(s.buildTenant)
	s.jobs = newJobStore(cfg.MaxJobsRetained, cfg.EventBuffer)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleJobReport)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	return s, nil
}

// buildTenant materializes a tenant under its configured quota tier:
// an isolated Session (own executor and budgets) memoizing into the
// server's shared cache. gen stamps which tier-catalog generation the
// tenant was built under; a later ReloadTiers makes it stale.
func (s *Server) buildTenant(id string, gen int64) *tenant {
	s.tierMu.RLock()
	tier := s.cfg.tierFor(id)
	s.tierMu.RUnlock()
	opts := []tooleval.Option{tooleval.WithCache(s.cache)}
	if s.cfg.Parallelism > 0 {
		opts = append(opts, tooleval.WithParallelism(s.cfg.Parallelism))
	}
	if s.cfg.Shards > 0 {
		opts = append(opts, tooleval.WithShardedExecutor(s.cfg.Shards))
	}
	if tier.MaxCells > 0 {
		opts = append(opts, tooleval.WithMaxCells(int(tier.MaxCells)))
	}
	if tier.MaxVirtualTime > 0 {
		opts = append(opts, tooleval.WithMaxVirtualTime(tier.MaxVirtualTime))
	}
	t := &tenant{id: id, tier: tier, gen: gen, sess: tooleval.NewSession(opts...)}
	if tier.MaxConcurrentJobs > 0 {
		t.jobSlots = make(chan struct{}, tier.MaxConcurrentJobs)
	}
	s.logf("toolbenchd: tenant %q admitted (tier %q)", id, tier.Name)
	return t
}

// ReloadTiers swaps the quota-tier catalog at runtime (the SIGHUP
// path in cmd/toolbenchd). The new catalog is validated first — a bad
// reload is rejected whole, keeping the old config live. In-flight
// jobs are untouched: existing tenants are marked stale and each is
// rebuilt under its new tier at its next admission with no jobs
// active, so a session is never closed or re-budgeted mid-sweep.
func (s *Server) ReloadTiers(tiers map[string]QuotaTier, defaultTier string, tenantTiers map[string]string) error {
	if defaultTier != "" {
		if _, ok := tiers[defaultTier]; !ok {
			return fmt.Errorf("server: reload: default tier %q is not in the tier catalog", defaultTier)
		}
	}
	for tenant, tier := range tenantTiers {
		if _, ok := tiers[tier]; !ok {
			return fmt.Errorf("server: reload: tenant %q maps to unknown tier %q", tenant, tier)
		}
	}
	s.tierMu.Lock()
	s.cfg.Tiers = tiers
	s.cfg.DefaultTier = defaultTier
	s.cfg.TenantTiers = tenantTiers
	s.tierMu.Unlock()
	// Bumping after the swap means a tenant built in between is stamped
	// stale and rebuilt once more — harmless; the catalog it read is
	// already the new one.
	s.tenants.bumpGen()
	s.logf("toolbenchd: tier catalog reloaded (%d tiers, default %q, %d tenant mappings)",
		len(tiers), defaultTier, len(tenantTiers))
	return nil
}

// Handler returns the server's HTTP surface (for httptest and for
// embedding under an outer mux).
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the shared cell cache (stats and test introspection).
func (s *Server) Cache() *tooleval.Cache { return s.cache }

// Store exposes the durable tier, nil without one.
func (s *Server) Store() *tooleval.ResultStore { return s.store }

// ListenAndServe listens on cfg.Addr and runs until ctx is cancelled,
// then drains: see Serve.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.logf("toolbenchd: listening on %s", ln.Addr())
	return s.Serve(ctx, ln)
}

// Serve accepts connections on ln until ctx is cancelled (the SIGTERM
// path in cmd/toolbenchd), then drains gracefully: stop admitting
// jobs, let in-flight sweeps and their streams finish, and — if the
// drain deadline passes first — cancel the stragglers' contexts and
// force-close their connections. Either way the tenant sessions are
// closed and the durable store is flushed before Serve returns; the
// error is nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// The listener failed out from under us; release what we own.
		s.Close()
		return err
	case <-ctx.Done():
	}
	return s.drain(srv)
}

// drain is the SIGTERM half of Serve, deadline-bounded by
// cfg.DrainTimeout.
func (s *Server) drain(srv *http.Server) error {
	s.draining.Store(true)
	s.logf("toolbenchd: draining (timeout %v)", s.cfg.DrainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(shCtx)
	if err != nil {
		// Deadline passed with sweeps still running: abort their
		// contexts — cells in flight finish, nothing half-done is
		// cached — and force-close the connections.
		s.logf("toolbenchd: drain deadline passed, aborting in-flight jobs")
		s.hardCancel()
		srv.Close()
	} else {
		s.logf("toolbenchd: in-flight jobs finished")
	}
	s.activeJobs.Wait()
	if cerr := s.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Close releases what the server owns — tenant sessions, then the
// durable store (synced so every persisted cell survives the exit).
// Idempotent and safe to call concurrently with itself; callers still
// streaming jobs should drain first (Serve does).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.hardCancel()
		err := s.tenants.closeAll()
		if s.store != nil {
			if serr := s.store.Close(); err == nil {
				err = serr
			}
		}
		s.closeErr = err
	})
	return s.closeErr
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
