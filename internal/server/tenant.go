package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tooleval"
)

// tenant is one isolated evaluation principal: its own Session (own
// executor, budgets, stats) over the server's shared cache, plus the
// admission state and counters the handlers maintain.
type tenant struct {
	id   string
	tier QuotaTier
	sess *tooleval.Session
	gen  int64 // registry generation this tenant was built under

	// jobSlots is the concurrent-job gate (nil = unlimited): acquire
	// is non-blocking, because the tier's job limit is a refusal
	// surface (429), not a queue.
	jobSlots chan struct{}

	jobsActive   atomic.Int64
	jobsStarted  atomic.Int64
	jobsDone     atomic.Int64
	jobsRefused  atomic.Int64
	specsDone    atomic.Int64
	specsFailed  atomic.Int64
	cells        atomic.Int64 // cell completions observed by this tenant's jobs
	cellsCached  atomic.Int64 // ... of which served from cache or store
	jobNanosEWMA atomic.Int64 // smoothed job duration, feeds Retry-After
}

// acquireJob takes a job slot, or refuses with a typed quota error —
// the same *tooleval.QuotaError shape session budgets raise, so one
// errors.As covers every 429 the server produces. On success the
// returned closure releases exactly the slot taken: it binds this
// tenant object and its channel, so a tier reload that rebuilds the
// tenant can never strand an in-flight job's release on a fresh
// channel.
func (t *tenant) acquireJob() (release func(), err error) {
	if t.jobSlots != nil {
		select {
		case t.jobSlots <- struct{}{}:
		default:
			t.jobsRefused.Add(1)
			limit := int64(t.tier.MaxConcurrentJobs)
			return nil, fmt.Errorf("tenant %q: concurrent-job limit reached: %w", t.id,
				&tooleval.QuotaError{Resource: "concurrent jobs", Used: limit, Limit: limit})
		}
	}
	t.jobsActive.Add(1)
	t.jobsStarted.Add(1)
	started := time.Now()
	return func() {
		t.recordJobDuration(time.Since(started))
		t.jobsActive.Add(-1)
		t.jobsDone.Add(1)
		if t.jobSlots != nil {
			<-t.jobSlots
		}
	}, nil
}

// carryCounters copies the cumulative counters from the tenant this
// one replaces, so a tier reload does not reset /statsz history.
func (t *tenant) carryCounters(old *tenant) {
	t.jobsStarted.Store(old.jobsStarted.Load())
	t.jobsDone.Store(old.jobsDone.Load())
	t.jobsRefused.Store(old.jobsRefused.Load())
	t.specsDone.Store(old.specsDone.Load())
	t.specsFailed.Store(old.specsFailed.Load())
	t.cells.Store(old.cells.Load())
	t.cellsCached.Store(old.cellsCached.Load())
	t.jobNanosEWMA.Store(old.jobNanosEWMA.Load())
}

// recordJobDuration folds one finished job into the duration EWMA
// (weight 1/4 on the new sample); the first sample seeds it.
func (t *tenant) recordJobDuration(d time.Duration) {
	for {
		old := t.jobNanosEWMA.Load()
		next := int64(d)
		if old != 0 {
			next = (3*old + int64(d)) / 4
		}
		if t.jobNanosEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfter estimates how long until a job slot frees: the smoothed
// job duration divided across the tier's concurrent slots, rounded up
// to whole seconds, at least 1. It is the Retry-After value for
// concurrent-job 429s — honest enough that a backing-off client
// usually succeeds on its first retry.
func (t *tenant) retryAfter() time.Duration {
	ewma := time.Duration(t.jobNanosEWMA.Load())
	slots := t.tier.MaxConcurrentJobs
	if slots < 1 {
		slots = 1
	}
	est := ewma / time.Duration(slots)
	if est < time.Second {
		return time.Second
	}
	return est.Round(time.Second)
}

// registry owns the tenant set: tenants materialize on first request
// and live until the server drains. All sessions share srvCache.
//
// The registry is also the reload point: bumping gen (Server.
// ReloadTiers) marks every tenant stale, and a stale tenant is rebuilt
// under the new tier catalog at its next idle admission — no in-flight
// job ever has its session closed or its quota changed underneath it.
type registry struct {
	mu      sync.Mutex
	tenants map[string]*tenant
	build   func(id string, gen int64) *tenant
	gen     int64
	closed  bool
}

func newRegistry(build func(id string, gen int64) *tenant) *registry {
	return &registry{tenants: make(map[string]*tenant), build: build}
}

// admit returns the tenant for id with a job slot acquired, creating
// the tenant on first use and rebuilding it when a tier reload left it
// stale and it has no jobs in flight. Resolution and slot acquisition
// happen under one lock, so a job can never start on a session that a
// concurrent reload is about to retire. After the registry is closed
// (drain completed) no new tenants are admitted.
func (r *registry) admit(id string) (*tenant, func(), error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, nil, fmt.Errorf("server: draining, not admitting tenants")
	}
	t, ok := r.tenants[id]
	var retired *tooleval.Session
	switch {
	case ok && t.gen != r.gen && t.jobsActive.Load() == 0:
		old := t
		retired = old.sess
		t = r.build(id, r.gen)
		t.carryCounters(old)
		r.tenants[id] = t
	case !ok:
		t = r.build(id, r.gen)
		r.tenants[id] = t
	}
	release, err := t.acquireJob()
	if err != nil {
		return t, nil, err
	}
	if retired != nil {
		// Close the replaced session only after its successor holds the
		// admission; an idempotent close outside the job path.
		retired.Close()
	}
	return t, release, nil
}

// lookup returns the tenant for id without admitting a job, nil when
// the tenant has never been admitted.
func (r *registry) lookup(id string) *tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[id]
}

// bumpGen marks every tenant stale (rebuilt at next idle admission)
// after a tier-catalog swap.
func (r *registry) bumpGen() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
}

// snapshot returns the tenants sorted by id (for deterministic
// /statsz rendering).
func (r *registry) snapshot() []*tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// closeAll closes every tenant session exactly once and stops
// admitting new tenants. Safe to call repeatedly (drain retries,
// server Close after Run): Session.Close is idempotent and the closed
// flag makes the sweep itself one-shot per tenant set.
func (r *registry) closeAll() error {
	r.mu.Lock()
	r.closed = true
	tenants := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	// Sorted close order makes the returned "first" error deterministic
	// — in map order, which tenant's close failure wins would vary from
	// run to run.
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].id < tenants[j].id })
	r.mu.Unlock()
	var first error
	for _, t := range tenants {
		if err := t.sess.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
