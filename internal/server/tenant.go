package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tooleval"
)

// tenant is one isolated evaluation principal: its own Session (own
// executor, budgets, stats) over the server's shared cache, plus the
// admission state and counters the handlers maintain.
type tenant struct {
	id   string
	tier QuotaTier
	sess *tooleval.Session

	// jobSlots is the concurrent-job gate (nil = unlimited): acquire
	// is non-blocking, because the tier's job limit is a refusal
	// surface (429), not a queue.
	jobSlots chan struct{}

	jobsActive  atomic.Int64
	jobsStarted atomic.Int64
	jobsDone    atomic.Int64
	jobsRefused atomic.Int64
	specsDone   atomic.Int64
	specsFailed atomic.Int64
	cells       atomic.Int64 // cell completions observed by this tenant's jobs
	cellsCached atomic.Int64 // ... of which served from cache or store
}

// acquireJob takes a job slot, or refuses with a typed quota error —
// the same *tooleval.QuotaError shape session budgets raise, so one
// errors.As covers every 429 the server produces.
func (t *tenant) acquireJob() error {
	if t.jobSlots != nil {
		select {
		case t.jobSlots <- struct{}{}:
		default:
			t.jobsRefused.Add(1)
			limit := int64(t.tier.MaxConcurrentJobs)
			return fmt.Errorf("tenant %q: concurrent-job limit reached: %w", t.id,
				&tooleval.QuotaError{Resource: "concurrent jobs", Used: limit, Limit: limit})
		}
	}
	t.jobsActive.Add(1)
	t.jobsStarted.Add(1)
	return nil
}

func (t *tenant) releaseJob() {
	t.jobsActive.Add(-1)
	t.jobsDone.Add(1)
	if t.jobSlots != nil {
		<-t.jobSlots
	}
}

// registry owns the tenant set: tenants materialize on first request
// and live until the server drains. All sessions share srvCache.
type registry struct {
	mu      sync.Mutex
	tenants map[string]*tenant
	build   func(id string) *tenant
	closed  bool
}

func newRegistry(build func(id string) *tenant) *registry {
	return &registry{tenants: make(map[string]*tenant), build: build}
}

// get returns the tenant for id, creating it on first use. After the
// registry is closed (drain completed) no new tenants are admitted.
func (r *registry) get(id string) (*tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("server: draining, not admitting tenants")
	}
	t, ok := r.tenants[id]
	if !ok {
		t = r.build(id)
		r.tenants[id] = t
	}
	return t, nil
}

// snapshot returns the tenants sorted by id (for deterministic
// /statsz rendering).
func (r *registry) snapshot() []*tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// closeAll closes every tenant session exactly once and stops
// admitting new tenants. Safe to call repeatedly (drain retries,
// server Close after Run): Session.Close is idempotent and the closed
// flag makes the sweep itself one-shot per tenant set.
func (r *registry) closeAll() error {
	r.mu.Lock()
	r.closed = true
	tenants := make([]*tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.mu.Unlock()
	var first error
	for _, t := range tenants {
		if err := t.sess.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
