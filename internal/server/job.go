package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"tooleval"
)

// Job lifecycle states as reported by GET /v1/jobs/{id}.
const (
	jobRunning   = "running"
	jobDone      = "done"      // every spec resolved; report available
	jobCancelled = "cancelled" // client disconnect or drain deadline aborted it
)

// job is one submitted batch: its specs, live event counters, the
// replay buffer its streams drain, and — once finished — its outcome
// and marshalled report.
type job struct {
	id     string
	tenant string
	specs  []tooleval.ExperimentSpec
	events *eventLog

	mu         sync.Mutex
	state      string
	specStarts int
	specDones  int
	cellEvents int
	failed     int
	report     []byte
	reportErr  error

	// Resume watchdog (streaming submissions only): the sweep's context
	// is cancelled not when the client disconnects but when no
	// subscriber has been attached for resumeWindow — the grace period
	// in which a dropped stream may reconnect with Last-Event-ID.
	cancel       context.CancelFunc // nil: job not resumable (blocking path)
	resumeWindow time.Duration
	subs         int
	watchdog     *time.Timer
}

// makeResumable arms the disconnect watchdog: cancel aborts the sweep
// if every subscriber stays detached for window. Call before the first
// attach.
func (j *job) makeResumable(cancel context.CancelFunc, window time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancel = cancel
	j.resumeWindow = window
}

// attach registers one live subscriber, disarming any pending
// disconnect watchdog.
func (j *job) attach() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.subs++
	if j.watchdog != nil {
		j.watchdog.Stop()
		j.watchdog = nil
	}
}

// detach unregisters a subscriber. When the last one leaves a running
// resumable job, the watchdog starts: reconnect within the window or
// the sweep is cancelled (its cells finish; nothing half-done caches).
func (j *job) detach() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.subs--
	if j.subs > 0 || j.state != jobRunning || j.cancel == nil || j.watchdog != nil {
		return
	}
	j.watchdog = time.AfterFunc(j.resumeWindow, j.cancel)
}

// publish folds one session event into the job's counters and appends
// its wire form to the replay buffer. It runs on the session's worker
// goroutines; append never blocks on subscribers.
func (j *job) publish(ev tooleval.Event) {
	j.observe(ev)
	if name, data, ok := eventWire(ev); ok {
		j.events.append(name, marshalEvent(name, data))
	}
}

// observe folds one session event into the job's counters. It is the
// job's EventContext sink body; the SSE encoder runs separately.
func (j *job) observe(ev tooleval.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch e := ev.(type) {
	case tooleval.SpecStart:
		j.specStarts++
	case tooleval.SpecDone:
		j.specDones++
		if e.Err != nil {
			j.failed++
		}
	case tooleval.CellEvent:
		j.cellEvents++
	}
}

// complete records the batch outcome and renders the report.
// cancelled marks a batch whose context died before the sweep
// finished; its report still renders (ctx errors ride the per-spec
// error strings) but the state tells clients not to trust it as the
// sweep's result.
func (j *job) complete(results []tooleval.Result, errs []error, cancelled bool) {
	report, reportErr := MarshalBatchReport(results, errs)
	j.mu.Lock()
	j.report, j.reportErr = report, reportErr
	if cancelled {
		j.state = jobCancelled
	} else {
		j.state = jobDone
	}
	if j.watchdog != nil {
		j.watchdog.Stop()
		j.watchdog = nil
	}
	final := j.statusLocked()
	j.mu.Unlock()
	// The terminal event, then no more: subscribers drain and hang up.
	j.events.append("job_done", marshalEvent("job_done", final))
	j.events.close()
}

// reportBytes returns the rendered report — nil while the job still
// runs — and any render error.
func (j *job) reportBytes() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report, j.reportErr
}

// jobStatusWire is the GET /v1/jobs/{id} body.
type jobStatusWire struct {
	Job        string `json:"job"`
	Tenant     string `json:"tenant"`
	State      string `json:"state"`
	Specs      int    `json:"specs"`
	SpecStarts int    `json:"spec_starts"`
	SpecDones  int    `json:"spec_dones"`
	Cells      int    `json:"cells"`
	Failed     int    `json:"failed"`
}

func (j *job) status() jobStatusWire {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *job) statusLocked() jobStatusWire {
	return jobStatusWire{
		Job:        j.id,
		Tenant:     j.tenant,
		State:      j.state,
		Specs:      len(j.specs),
		SpecStarts: j.specStarts,
		SpecDones:  j.specDones,
		Cells:      j.cellEvents,
		Failed:     j.failed,
	}
}

// jobStore indexes jobs by id and bounds per-tenant retention: every
// tenant keeps at most retain finished jobs (oldest evicted first), so
// a long-lived daemon's memory does not grow with its request count.
// Running jobs are never evicted.
type jobStore struct {
	mu       sync.Mutex
	jobs     map[string]*job
	byTenant map[string][]*job // insertion order, for eviction
	retain   int
	eventCap int // replay-buffer bound per job
	seq      int64
}

func newJobStore(retain, eventCap int) *jobStore {
	return &jobStore{
		jobs:     make(map[string]*job),
		byTenant: make(map[string][]*job),
		retain:   retain,
		eventCap: eventCap,
	}
}

// create registers a new running job for tenant and evicts that
// tenant's stale finished jobs beyond the retention bound. The job's
// replay buffer opens with the initial "job" status snapshot, so every
// subscriber — even one attaching after the sweep started — sees the
// job header first.
func (s *jobStore) create(tenant string, specs []tooleval.ExperimentSpec) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &job{
		id:     fmt.Sprintf("j-%06d", s.seq),
		tenant: tenant,
		specs:  specs,
		state:  jobRunning,
		events: newEventLog(s.eventCap),
	}
	j.events.append("job", marshalEvent("job", j.status()))
	s.jobs[j.id] = j
	list := append(s.byTenant[tenant], j)
	// Evict oldest finished jobs past the bound (finished only: a
	// running job's handler still holds it).
	kept := list[:0]
	over := len(list) - s.retain
	for _, old := range list {
		if over > 0 && old != j {
			old.mu.Lock()
			finished := old.state != jobRunning
			old.mu.Unlock()
			if finished {
				delete(s.jobs, old.id)
				over--
				continue
			}
		}
		kept = append(kept, old)
	}
	s.byTenant[tenant] = kept
	return j
}

// get looks a job up for the given tenant; jobs are namespaced by
// tenant, so another tenant's id behaves as not-found.
func (s *jobStore) get(tenant, id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.tenant != tenant {
		return nil, false
	}
	return j, true
}
