package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tooleval"
	"tooleval/internal/sim"
	"tooleval/internal/store"
)

// maxRequestBody bounds POST bodies; a batch of specs is small, and an
// unbounded decode is a free memory DoS.
const maxRequestBody = 1 << 20

// tenantID resolves the requesting tenant: the X-Tenant header, or the
// ?tenant= query parameter (EventSource clients cannot set headers),
// defaulting to "default".
func tenantID(r *http.Request) (string, error) {
	id := r.Header.Get("X-Tenant")
	if id == "" {
		id = r.URL.Query().Get("tenant")
	}
	if id == "" {
		id = "default"
	}
	if !ValidTenantID(id) {
		return "", fmt.Errorf("server: invalid tenant id %q", id)
	}
	return id, nil
}

// writeError emits the errorWire envelope; quota refusals carry their
// typed breakdown so clients need not parse message strings.
func writeError(w http.ResponseWriter, code int, err error) {
	ew := errorWire{Error: err.Error()}
	var qe *tooleval.QuotaError
	if errors.As(err, &qe) {
		ew.Quota = &quotaWire{Resource: qe.Resource, Used: qe.Used, Limit: qe.Limit}
	}
	writeJSON(w, code, ew)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit admits a batch: POST /v1/jobs. With "Accept:
// text/event-stream" the response is the live SSE feed of the sweep
// (job, spec_start, cell, phase_start, phase_done, spec_done, job_done
// events); otherwise the handler blocks until the batch finishes and
// responds with the report JSON directly. Either way the job is
// registered and its status/report remain fetchable afterwards.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server: draining, not accepting jobs"))
		return
	}
	id, err := tenantID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req jobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: decoding job request: %w", err))
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("server: job has no specs"))
		return
	}
	if len(req.Specs) > s.cfg.MaxSpecsPerJob {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: %d specs exceeds per-job limit %d", len(req.Specs), s.cfg.MaxSpecsPerJob))
		return
	}
	tn, release, err := s.tenants.admit(id)
	if err != nil {
		if tn == nil {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		// Concurrent-job refusal: tell the client when a slot should
		// free, derived from the tenant's smoothed job duration.
		w.Header().Set("Retry-After", strconv.FormatInt(int64(tn.retryAfter().Seconds()), 10))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	defer release()
	s.activeJobs.Add(1)
	defer s.activeJobs.Done()

	specs := make([]tooleval.ExperimentSpec, len(req.Specs))
	for i, sw := range req.Specs {
		specs[i] = sw.spec()
	}
	j := s.jobs.create(id, specs)
	streaming := wantsSSE(r)

	// The job's context: the blocking path dies with the client
	// connection, while a streaming submission survives disconnects for
	// cfg.ResumeWindow (the watchdog in job.detach cancels it if no
	// subscriber reattaches). Both die with the drain deadline.
	var ctx context.Context
	var cancel context.CancelFunc
	if streaming {
		ctx, cancel = context.WithCancel(context.Background())
		j.makeResumable(cancel, s.cfg.ResumeWindow)
	} else {
		ctx, cancel = context.WithCancel(r.Context())
	}
	defer cancel()
	stopAfter := context.AfterFunc(s.hardCtx, cancel)
	defer stopAfter()

	var forwarded chan struct{}
	if streaming {
		stream, err := newSSE(w)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			cancel()
			j.complete(nil, nil, true)
			return
		}
		forwarded = make(chan struct{})
		go func() {
			defer close(forwarded)
			forward(r.Context(), stream, j, 0)
		}()
	}

	// The per-job sink: every event in this batch's call tree folds
	// into the job counters, the tenant counters, and the job's replay
	// buffer (which live streams drain). Runs on the session's worker
	// goroutines.
	ctx = tooleval.EventContext(ctx, func(ev tooleval.Event) {
		j.publish(ev)
		switch e := ev.(type) {
		case tooleval.CellEvent:
			tn.cells.Add(1)
			if e.Cached {
				tn.cellsCached.Add(1)
			}
		case tooleval.SpecDone:
			tn.specsDone.Add(1)
			if e.Err != nil {
				tn.specsFailed.Add(1)
			}
		}
	})

	results, errs := tn.sess.SubmitAll(ctx, specs)
	j.complete(results, errs, ctx.Err() != nil)

	if streaming {
		<-forwarded // job_done flushed, or the client went away
		return
	}

	// Blocking JSON path: the report is the response body. A quota
	// refusal anywhere in the batch makes the whole response a 429 —
	// the batch exceeded the tenant's tier — while ordinary spec
	// failures stay 200 with per-spec error strings.
	report, reportErr := j.reportBytes()
	if reportErr != nil {
		writeError(w, http.StatusInternalServerError, reportErr)
		return
	}
	code := http.StatusOK
	for _, err := range errs {
		var qe *tooleval.QuotaError
		if errors.As(err, &qe) {
			code = http.StatusTooManyRequests
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(report)
}

func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// gapWire is the "gap" SSE event: the subscriber resumed (or fell)
// past the replay buffer and missed Missed events. The stream is still
// live from the current position; a client needing the lost ground
// fetches the final report instead.
type gapWire struct {
	Missed int64 `json:"missed"`
}

// forward drains j's replay buffer onto stream, starting after event
// id after, until the job's log closes (job_done flushed), the client
// disconnects, or ctx ends. Every frame carries its log id, so the
// client can resume from wherever the stream died.
func forward(ctx context.Context, stream *sseStream, j *job, after int64) {
	j.attach()
	defer j.detach()
	for {
		events, missed, done, updated := j.events.since(after)
		if missed > 0 {
			stream.send("gap", gapWire{Missed: missed})
			after += missed
		}
		for _, e := range events {
			stream.sendRaw(e.id, e.name, e.data)
			after = e.id
		}
		if stream.failed() {
			return
		}
		if len(events) > 0 || missed > 0 {
			// Made progress: more may have arrived (or the log closed)
			// while draining, so re-check before sleeping.
			continue
		}
		if done {
			return
		}
		select {
		case <-updated:
		case <-ctx.Done():
			return
		}
	}
}

// handleJobEvents serves GET /v1/jobs/{id}/events: the job's SSE feed,
// resumable. A fresh subscriber replays the whole retained buffer; one
// reconnecting sends Last-Event-ID (or ?after=N) and replays only the
// gap, then continues live. Attaching also disarms the disconnect
// watchdog, so a dropped POST stream that reconnects here keeps its
// sweep alive.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	after := int64(0)
	arg := r.Header.Get("Last-Event-ID")
	if arg == "" {
		arg = r.URL.Query().Get("after")
	}
	if arg != "" {
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: bad Last-Event-ID %q", arg))
			return
		}
		after = n
	}
	stream, err := newSSE(w)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	forward(r.Context(), stream, j, after)
}

// handleJobStatus serves GET /v1/jobs/{id}: live progress counters.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobReport serves GET /v1/jobs/{id}/report: the finished batch
// report (409 while the job still runs). ?spec=N narrows to one spec's
// entry.
func (s *Server) handleJobReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	report, err := j.reportBytes()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if report == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("server: job %s still running", j.id))
		return
	}
	if specArg := r.URL.Query().Get("spec"); specArg != "" {
		n, err := strconv.Atoi(specArg)
		if err != nil || n < 0 || n >= len(j.specs) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: job %s has no spec %q", j.id, specArg))
			return
		}
		var full reportWire
		if err := json.Unmarshal(report, &full); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, full.Specs[n])
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(report)
}

// lookupJob resolves {id} under the requesting tenant's namespace,
// writing the error response itself on failure.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	tenant, err := tenantID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	id := r.PathValue("id")
	j, ok := s.jobs.get(tenant, id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: no job %q", id))
		return nil, false
	}
	return j, true
}

// healthWire is the GET /healthz body.
type healthWire struct {
	Status string `json:"status"` // "ok" | "degraded" | "draining"
	// StoreCircuit is the durable store's write-path breaker state
	// (closed | open | half-open); absent without a store. The store
	// recovers on its own — an open circuit probes the disk under
	// backoff and re-closes when a probe succeeds — so "degraded" is a
	// condition to watch, not to restart over.
	StoreCircuit string `json:"store_circuit,omitempty"`
	StoreError   string `json:"store_error,omitempty"`
}

// healthFor maps server state to the health response. Draining is a
// 503 so load balancers stop routing here; a degraded durable store
// (persistence paused while the circuit is open, evaluation still
// correct from the in-memory tier) stays 200 but flips status so
// operators notice.
func healthFor(draining bool, sh *store.Health) (int, healthWire) {
	if draining {
		return http.StatusServiceUnavailable, healthWire{Status: "draining"}
	}
	h := healthWire{Status: "ok"}
	if sh != nil {
		h.StoreCircuit = string(sh.State)
		if sh.State != store.CircuitClosed {
			h.Status = "degraded"
			h.StoreError = errString(sh.Err)
		}
	}
	return http.StatusOK, h
}

// handleHealthz reports liveness; see healthFor for the state mapping.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var sh *store.Health
	if s.store != nil {
		h := s.store.Health()
		sh = &h
	}
	code, h := healthFor(s.draining.Load(), sh)
	writeJSON(w, code, h)
}

// statszWire is the GET /statsz body.
type statszWire struct {
	EngineVersion uint64                     `json:"engine_version"`
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Draining      bool                       `json:"draining"`
	Cache         cacheStatsWire             `json:"cache"`
	Store         *storeStatsWire            `json:"store,omitempty"`
	Tenants       map[string]tenantStatsWire `json:"tenants"`
}

type cacheStatsWire struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Cells  int   `json:"cells"`
}

type storeStatsWire struct {
	Cells   int    `json:"cells"`
	Circuit string `json:"circuit"` // write-path breaker state
	Trips   int64  `json:"trips"`   // times the breaker opened
	Probes  int64  `json:"probes"`  // half-open probe writes admitted
	Dropped int64  `json:"dropped"` // fills skipped while open
	Error   string `json:"error,omitempty"`
}

type tenantStatsWire struct {
	Tier        string `json:"tier"`
	JobsActive  int64  `json:"jobs_active"`
	JobsStarted int64  `json:"jobs_started"`
	JobsDone    int64  `json:"jobs_done"`
	JobsRefused int64  `json:"jobs_refused"`
	SpecsDone   int64  `json:"specs_done"`
	SpecsFailed int64  `json:"specs_failed"`
	Cells       int64  `json:"cells"`
	CellsCached int64  `json:"cells_cached"`
}

// handleStatsz serves operational counters: the shared cache, the
// durable store, and every tenant's admission and sweep totals.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	out := statszWire{
		EngineVersion: sim.EngineVersion,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.draining.Load(),
		Cache:         cacheStatsWire{Hits: cs.Hits, Misses: cs.Misses, Cells: s.cache.Len()},
		Tenants:       make(map[string]tenantStatsWire),
	}
	if s.store != nil {
		sh := s.store.Health()
		out.Store = &storeStatsWire{
			Cells:   s.store.Len(),
			Circuit: string(sh.State),
			Trips:   sh.Trips,
			Probes:  sh.Probes,
			Dropped: sh.Dropped,
			Error:   errString(sh.Err),
		}
	}
	for _, t := range s.tenants.snapshot() {
		out.Tenants[t.id] = tenantStatsWire{
			Tier:        t.tier.Name,
			JobsActive:  t.jobsActive.Load(),
			JobsStarted: t.jobsStarted.Load(),
			JobsDone:    t.jobsDone.Load(),
			JobsRefused: t.jobsRefused.Load(),
			SpecsDone:   t.specsDone.Load(),
			SpecsFailed: t.specsFailed.Load(),
			Cells:       t.cells.Load(),
			CellsCached: t.cellsCached.Load(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}
