package tooleval_test

import (
	"strings"
	"testing"

	"tooleval"
)

func TestPlatformsCatalog(t *testing.T) {
	pfs := tooleval.Platforms()
	if len(pfs) != 6 {
		t.Fatalf("got %d platforms, want 6", len(pfs))
	}
	if _, err := tooleval.GetPlatform("sun-ethernet"); err != nil {
		t.Fatal(err)
	}
	if _, err := tooleval.GetPlatform("bogus"); err == nil {
		t.Fatal("unknown platform should error")
	}
}

func TestToolNames(t *testing.T) {
	names := tooleval.ToolNames()
	want := []string{"p4", "pvm", "express"}
	if len(names) != len(want) {
		t.Fatalf("tools = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("tools = %v, want %v", names, want)
		}
	}
}

func TestRunRejectsMissingPort(t *testing.T) {
	_, err := tooleval.Run("sun-atm-wan", "express", tooleval.RunConfig{Procs: 2},
		func(c *tooleval.Ctx) (any, error) { return nil, nil })
	if err == nil {
		t.Fatal("express on NYNET must be rejected")
	}
	if !strings.Contains(err.Error(), "no express port") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestPublicPingPong(t *testing.T) {
	ms, err := tooleval.PingPong("sun-ethernet", "p4", []int{0, 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[1] <= ms[0] {
		t.Fatalf("ping-pong times %v", ms)
	}
}

func TestPublicRunApp(t *testing.T) {
	m, err := tooleval.RunApp("alpha-fddi", "pvm", "montecarlo", []int{1, 2}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Procs) != 2 || m.Seconds[1] >= m.Seconds[0] {
		t.Fatalf("montecarlo should speed up: %+v", m)
	}
}

func TestEvaluateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation skipped in -short")
	}
	for _, profile := range tooleval.Profiles() {
		ev, err := tooleval.Evaluate(profile, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", profile.Name, err)
		}
		// p4 wins overall under every performance-weighted profile; its
		// TPL score must be a perfect 1.0 (fastest at every primitive).
		if ev.Levels["TPL"]["p4"] < 0.999 {
			t.Fatalf("%s: p4 TPL = %f, want 1.0", profile.Name, ev.Levels["TPL"]["p4"])
		}
		// PVM has the best usability matrix.
		if !(ev.Levels["ADL"]["pvm"] > ev.Levels["ADL"]["p4"]) {
			t.Fatalf("%s: ADL should favor pvm over p4: %v", profile.Name, ev.Levels["ADL"])
		}
		text := tooleval.RenderEvaluation(ev)
		if !strings.Contains(text, profile.Name) {
			t.Fatalf("report missing profile name:\n%s", text)
		}
	}
}

func TestDeterministicPublicAPI(t *testing.T) {
	a, err := tooleval.Ring("sun-ethernet", "pvm", 4, []int{8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := tooleval.Ring("sun-ethernet", "pvm", 4, []int{8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("ring not deterministic: %f vs %f", a[0], b[0])
	}
}
