package tooleval_test

import (
	"context"
	"strings"
	"testing"

	"tooleval"
)

var bg = context.Background()

func TestPlatformsCatalog(t *testing.T) {
	pfs := tooleval.Platforms()
	if len(pfs) != 6 {
		t.Fatalf("got %d platforms, want 6", len(pfs))
	}
	if _, err := tooleval.GetPlatform("sun-ethernet"); err != nil {
		t.Fatal(err)
	}
	if _, err := tooleval.GetPlatform("bogus"); err == nil {
		t.Fatal("unknown platform should error")
	}
}

func TestToolNames(t *testing.T) {
	names := tooleval.ToolNames()
	want := []string{"p4", "pvm", "express"}
	if len(names) != len(want) {
		t.Fatalf("tools = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("tools = %v, want %v", names, want)
		}
	}
}

func TestRunRejectsMissingPort(t *testing.T) {
	sess := tooleval.NewSession()
	_, err := sess.Run(bg, "sun-atm-wan", "express", tooleval.RunConfig{Procs: 2},
		func(c *tooleval.Ctx) (any, error) { return nil, nil })
	if err == nil {
		t.Fatal("express on NYNET must be rejected")
	}
	if !strings.Contains(err.Error(), "no express port") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestPublicPingPong(t *testing.T) {
	sess := tooleval.NewSession()
	ms, err := sess.PingPong(bg, "sun-ethernet", "p4", []int{0, 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[1] <= ms[0] {
		t.Fatalf("ping-pong times %v", ms)
	}
}

func TestPublicRunApp(t *testing.T) {
	sess := tooleval.NewSession()
	m, err := sess.RunApp(bg, "alpha-fddi", "pvm", "montecarlo", []int{1, 2}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Procs) != 2 || m.Seconds[1] >= m.Seconds[0] {
		t.Fatalf("montecarlo should speed up: %+v", m)
	}
}

func TestEvaluateEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation skipped in -short")
	}
	// One session: the three profile evaluations re-weight the same
	// memoized cells.
	sess := tooleval.NewSession()
	for _, profile := range tooleval.Profiles() {
		ev, err := sess.Evaluate(bg, profile, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", profile.Name, err)
		}
		// p4 wins overall under every performance-weighted profile; its
		// TPL score must be a perfect 1.0 (fastest at every primitive).
		if ev.Levels["TPL"]["p4"] < 0.999 {
			t.Fatalf("%s: p4 TPL = %f, want 1.0", profile.Name, ev.Levels["TPL"]["p4"])
		}
		// PVM has the best usability matrix.
		if !(ev.Levels["ADL"]["pvm"] > ev.Levels["ADL"]["p4"]) {
			t.Fatalf("%s: ADL should favor pvm over p4: %v", profile.Name, ev.Levels["ADL"])
		}
		text := tooleval.RenderEvaluation(ev)
		if !strings.Contains(text, profile.Name) {
			t.Fatalf("report missing profile name:\n%s", text)
		}
	}
	if hits, misses := sess.Stats(); misses == 0 || hits == 0 {
		t.Fatalf("stats = %d hits / %d misses; repeated profiles should hit the session cache", hits, misses)
	}
}

func TestDeterministicPublicAPI(t *testing.T) {
	// Two isolated sessions (empty caches) must agree bit-for-bit.
	a, err := tooleval.NewSession().Ring(bg, "sun-ethernet", "pvm", 4, []int{8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := tooleval.NewSession().Ring(bg, "sun-ethernet", "pvm", 4, []int{8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("ring not deterministic: %f vs %f", a[0], b[0])
	}
}

func TestProfileByName(t *testing.T) {
	p, err := tooleval.ProfileByName("developer")
	if err != nil || p.Name != "developer" {
		t.Fatalf("ProfileByName(developer) = %+v, %v", p, err)
	}
	if _, err := tooleval.ProfileByName("operator"); err == nil {
		t.Fatal("unknown profile should error")
	}
}

// TestDeprecatedWrappersStillWork keeps the compatibility surface
// honest: the package-level functions must keep serving legacy callers
// through the default session.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	//lint:ignore SA1019 the deprecated wrappers are this test's subject
	ms, err := tooleval.PingPong("sun-ethernet", "p4", []int{1 << 10})
	if err != nil || len(ms) != 1 {
		t.Fatalf("PingPong wrapper = %v, %v", ms, err)
	}
	//lint:ignore SA1019 the deprecated wrappers are this test's subject
	res, err := tooleval.Run("sun-ethernet", "pvm", tooleval.RunConfig{Procs: 2},
		func(c *tooleval.Ctx) (any, error) { return c.Rank(), nil })
	if err != nil || res.Value.(int) != 0 {
		t.Fatalf("Run wrapper = %+v, %v", res, err)
	}
	//lint:ignore SA1019 the deprecated wrappers are this test's subject
	if hits, misses := tooleval.SchedulerStats(); hits < 0 || misses < 1 {
		t.Fatalf("SchedulerStats = %d, %d; the wrapper calls above must have simulated", hits, misses)
	}
}

// TestDeprecatedWrappersEmptySweep pins the legacy no-op contract: an
// empty size list is an empty curve, not a validation error, even now
// that the wrappers route through the ExperimentSpec batch surface.
func TestDeprecatedWrappersEmptySweep(t *testing.T) {
	//lint:ignore SA1019 the deprecated wrappers are this test's subject
	ms, err := tooleval.PingPong("sun-ethernet", "p4", nil)
	if err != nil || ms == nil || len(ms) != 0 {
		t.Fatalf("PingPong(nil sizes) = %v, %v; want empty curve, nil error", ms, err)
	}
	//lint:ignore SA1019 the deprecated wrappers are this test's subject
	ms, err = tooleval.GlobalSum("sun-ethernet", "p4", 4, []int{})
	if err != nil || ms == nil || len(ms) != 0 {
		t.Fatalf("GlobalSum(no lens) = %v, %v; want empty curve, nil error", ms, err)
	}
}
